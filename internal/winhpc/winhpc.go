// Package winhpc simulates the Microsoft Windows HPC Server 2008 R2
// job scheduler that runs the Windows side of the hybrid cluster.
// Unlike Torque (which the paper's detector scrapes as text), Windows
// HPC ships an SDK, so this package exposes a programmatic API —
// mirroring how the paper's Windows-side detector and communicator
// were built against the HPC Pack SDK.
//
// Scheduling follows the product's "Queued" policy: first-come
// first-served over resource units, with an optional backfill switch.
// The default resource unit is the core; node-exclusive jobs take
// whole nodes, which is what MPI and the MATLAB MDCS case study use.
package winhpc

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtime"
)

// JobState follows the HPC Pack state machine (condensed to the states
// the middleware observes).
type JobState uint8

const (
	JobQueued JobState = iota
	JobRunning
	JobFinished
	JobFailed
	JobCanceled
)

// String names the state like the HPC Pack UI.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "Queued"
	case JobRunning:
		return "Running"
	case JobFinished:
		return "Finished"
	case JobFailed:
		return "Failed"
	case JobCanceled:
		return "Canceled"
	default:
		return "Unknown"
	}
}

// ResourceUnit selects what a job's Min/Max counts mean.
type ResourceUnit uint8

const (
	// UnitCore schedules individual cores anywhere in the cluster.
	UnitCore ResourceUnit = iota
	// UnitNode schedules whole nodes exclusively.
	UnitNode
)

// String names the unit.
func (u ResourceUnit) String() string {
	if u == UnitNode {
		return "Node"
	}
	return "Core"
}

// Allocation records cores granted on one node.
type Allocation struct {
	Node  string
	Cores int
}

// Job is a Windows HPC job. The simulation uses a single required
// resource count rather than the product's min–max range; grow/shrink
// is out of scope for the middleware's behaviour.
type Job struct {
	ID       int
	Name     string
	Owner    string
	Template string
	State    JobState
	Unit     ResourceUnit
	Count    int // cores (UnitCore) or nodes (UnitNode)

	Runtime    time.Duration
	SubmitTime time.Duration
	StartTime  time.Duration
	EndTime    time.Duration

	Rerunnable bool
	Priority   Priority
	Alloc      []Allocation

	// Exec runs at job start with the allocated node names; OnEnd
	// fires at completion, failure or cancellation.
	Exec  func(nodes []string)
	OnEnd func(*Job)
}

// Cores returns the total cores the job occupies once allocated, or
// would occupy given 0 knowledge of node sizes for UnitNode jobs.
func (j *Job) Cores(coresPerNode int) int {
	if j.Unit == UnitCore {
		return j.Count
	}
	return j.Count * coresPerNode
}

// AllocatedNodes lists distinct node names in allocation order.
func (j *Job) AllocatedNodes() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range j.Alloc {
		if !seen[a.Node] {
			seen[a.Node] = true
			out = append(out, a.Node)
		}
	}
	return out
}

// NodeState follows the HPC Pack node states the middleware cares
// about.
type NodeState uint8

const (
	NodeOnline NodeState = iota
	NodeOffline
	NodeUnreachable
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case NodeOffline:
		return "Offline"
	case NodeUnreachable:
		return "Unreachable"
	default:
		return "Online"
	}
}

// Node is a compute node from the scheduler's perspective.
type Node struct {
	Name     string
	Cores    int
	Template string
	state    NodeState
	used     int
}

// State returns the node state.
func (n *Node) State() NodeState { return n.state }

// FreeCores returns schedulable cores (0 unless online).
func (n *Node) FreeCores() int {
	if n.state != NodeOnline {
		return 0
	}
	return n.Cores - n.used
}

// UsedCores returns cores currently allocated.
func (n *Node) UsedCores() int { return n.used }

// Priority follows the HPC Pack five-level job priority.
type Priority int8

const (
	PriorityLowest      Priority = -2
	PriorityBelowNormal Priority = -1
	PriorityNormal      Priority = 0
	PriorityAboveNormal Priority = 1
	PriorityHighest     Priority = 2
)

// String names the priority level.
func (p Priority) String() string {
	switch p {
	case PriorityLowest:
		return "Lowest"
	case PriorityBelowNormal:
		return "BelowNormal"
	case PriorityAboveNormal:
		return "AboveNormal"
	case PriorityHighest:
		return "Highest"
	default:
		return "Normal"
	}
}

// JobSpec is the submission request (a subset of the SDK's
// ISchedulerJob properties).
type JobSpec struct {
	Name     string
	Owner    string
	Template string
	Unit     ResourceUnit
	Count    int
	Runtime  time.Duration
	Rerun    bool
	Priority Priority
	Exec     func(nodes []string)
	OnEnd    func(*Job)
}

// Scheduler is the head-node scheduler service.
type Scheduler struct {
	eng     *simtime.Engine
	cluster string

	seq       int
	jobs      map[int]*Job
	order     []int
	nodes     map[string]*Node
	nodeOrder []string

	// Backfill enables the product's "backfilling" option, modelled as
	// reservation-based EASY backfill: a job may jump the blocked
	// queue head only when it cannot delay the head's earliest
	// reservation. Off in the paper's deployment. An earlier revision
	// shipped unreserved greedy backfill here, which let a stream of
	// narrow jobs starve a blocked wide job indefinitely.
	Backfill bool

	// OnJobRequeue fires when a running rerunnable job loses a node
	// and returns to the queue; the metrics recorder needs it to stop
	// busy-core integration between attempts.
	OnJobStart   func(*Job)
	OnJobEnd     func(*Job)
	OnJobRequeue func(*Job)

	schedPending bool
	// schedOverride replaces the scheduling pass; tests use it to run
	// a replica of historical policies against the same scheduler.
	schedOverride func()
}

// NewScheduler creates the scheduler for a named cluster.
func NewScheduler(eng *simtime.Engine, cluster string) *Scheduler {
	return &Scheduler{
		eng:     eng,
		cluster: cluster,
		jobs:    make(map[int]*Job),
		nodes:   make(map[string]*Node),
	}
}

// ClusterName returns the head node name.
func (s *Scheduler) ClusterName() string { return s.cluster }

// AddNode registers a compute node; online=false models a node
// currently booted into the other OS.
func (s *Scheduler) AddNode(name string, cores int, online bool) (*Node, error) {
	if _, ok := s.nodes[name]; ok {
		return nil, fmt.Errorf("winhpc: node %s already exists", name)
	}
	if cores <= 0 {
		return nil, fmt.Errorf("winhpc: node %s: bad core count %d", name, cores)
	}
	n := &Node{Name: name, Cores: cores, Template: "Default ComputeNode Template"}
	if !online {
		n.state = NodeUnreachable
	}
	s.nodes[name] = n
	s.nodeOrder = append(s.nodeOrder, name)
	if online {
		s.kick()
	}
	return n, nil
}

// Node returns a node by name.
func (s *Scheduler) Node(name string) (*Node, error) {
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("winhpc: unknown node %s", name)
	}
	return n, nil
}

// Nodes lists nodes in registration order.
func (s *Scheduler) Nodes() []*Node {
	out := make([]*Node, len(s.nodeOrder))
	for i, name := range s.nodeOrder {
		out[i] = s.nodes[name]
	}
	return out
}

// SetNodeOnline flips a node between Online and Unreachable (the state
// a node shows when it has rebooted into Linux). Running jobs lose
// their cores; rerunnable jobs requeue, others fail.
func (s *Scheduler) SetNodeOnline(name string, online bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("winhpc: unknown node %s", name)
	}
	if online {
		n.state = NodeOnline
		s.kick()
		return nil
	}
	n.state = NodeUnreachable
	var victims []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != JobRunning {
			continue
		}
		for _, a := range j.Alloc {
			if a.Node == name {
				victims = append(victims, j)
				break
			}
		}
	}
	for _, j := range victims {
		s.release(j)
		if j.Rerunnable {
			j.State = JobQueued
			j.Alloc = nil
			if s.OnJobRequeue != nil {
				s.OnJobRequeue(j)
			}
		} else {
			j.State = JobFailed
			j.EndTime = s.eng.Now()
			s.notifyEnd(j)
		}
	}
	s.kick()
	return nil
}

// SetNodeOffline administratively drains a node (no new allocations,
// running jobs continue).
func (s *Scheduler) SetNodeOffline(name string, offline bool) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("winhpc: unknown node %s", name)
	}
	if offline {
		n.state = NodeOffline
	} else {
		n.state = NodeOnline
		s.kick()
	}
	return nil
}

// SubmitJob validates and enqueues a job. Requests exceeding the
// configured node table are rejected at submission (HPC Pack validates
// resource requests against the cluster's node groups); unreachable
// nodes still count, since they may come back.
func (s *Scheduler) SubmitJob(spec JobSpec) (*Job, error) {
	if spec.Count <= 0 {
		spec.Count = 1
	}
	if spec.Name == "" {
		spec.Name = "Job"
	}
	if spec.Owner == "" {
		spec.Owner = "HPC\\user"
	}
	if spec.Runtime < 0 {
		return nil, fmt.Errorf("winhpc: negative runtime")
	}
	switch spec.Unit {
	case UnitNode:
		if spec.Count > len(s.nodes) {
			return nil, fmt.Errorf("winhpc: job needs %d nodes, cluster has %d", spec.Count, len(s.nodes))
		}
	default:
		total := 0
		for _, n := range s.nodes {
			total += n.Cores
		}
		if spec.Count > total {
			return nil, fmt.Errorf("winhpc: job needs %d cores, cluster has %d", spec.Count, total)
		}
	}
	s.seq++
	j := &Job{
		ID:         s.seq,
		Name:       spec.Name,
		Owner:      spec.Owner,
		Template:   spec.Template,
		State:      JobQueued,
		Unit:       spec.Unit,
		Count:      spec.Count,
		Runtime:    spec.Runtime,
		SubmitTime: s.eng.Now(),
		Rerunnable: spec.Rerun,
		Priority:   spec.Priority,
		Exec:       spec.Exec,
		OnEnd:      spec.OnEnd,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.kick()
	return j, nil
}

// CancelJob cancels a queued or running job.
func (s *Scheduler) CancelJob(id int) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("winhpc: unknown job %d", id)
	}
	switch j.State {
	case JobQueued:
		j.State = JobCanceled
		j.EndTime = s.eng.Now()
		s.notifyEnd(j)
	case JobRunning:
		s.release(j)
		j.State = JobCanceled
		j.EndTime = s.eng.Now()
		s.notifyEnd(j)
		s.kick()
	default:
		return fmt.Errorf("winhpc: job %d already %s", id, j.State)
	}
	return nil
}

// Job returns a job by ID.
func (s *Scheduler) Job(id int) (*Job, error) {
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("winhpc: unknown job %d", id)
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// QueuedJobs returns waiting jobs in scheduling order: priority
// descending (the HPC Pack "Queued" policy), submission order within
// a level.
func (s *Scheduler) QueuedJobs() []*Job {
	var out []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == JobQueued {
			out = append(out, j)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// RunningJobs returns executing jobs in submission order.
func (s *Scheduler) RunningJobs() []*Job {
	var out []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == JobRunning {
			out = append(out, j)
		}
	}
	return out
}

// TotalCores sums cores over nodes that are not unreachable.
func (s *Scheduler) TotalCores() int {
	total := 0
	for _, n := range s.Nodes() {
		if n.state != NodeUnreachable {
			total += n.Cores
		}
	}
	return total
}

// OnlineNodes counts online nodes.
func (s *Scheduler) OnlineNodes() int {
	c := 0
	for _, n := range s.Nodes() {
		if n.state == NodeOnline {
			c++
		}
	}
	return c
}

// QueueSnapshot is the condensed queue view the detector polls through
// the SDK (job counts plus the head-of-queue demand).
type QueueSnapshot struct {
	Running      int
	Queued       int
	FirstQueued  int    // job ID, 0 when the queue is empty
	FirstName    string // job name of the queue head
	NeededCores  int    // cores the queue head requires
	OnlineCores  int
	PendingCores int // total cores requested by all queued jobs
}

// Snapshot builds the queue view.
func (s *Scheduler) Snapshot() QueueSnapshot {
	snap := QueueSnapshot{OnlineCores: 0}
	for _, n := range s.Nodes() {
		if n.state == NodeOnline {
			snap.OnlineCores += n.Cores
		}
	}
	cpn := s.typicalCores()
	snap.Running = len(s.RunningJobs())
	// The queue head follows scheduling order (priority first), since
	// that is the job whose demand a dual-boot controller must satisfy.
	for i, j := range s.QueuedJobs() {
		snap.Queued++
		snap.PendingCores += j.Cores(cpn)
		if i == 0 {
			snap.FirstQueued = j.ID
			snap.FirstName = j.Name
			snap.NeededCores = j.Cores(cpn)
		}
	}
	return snap
}

// typicalCores returns the modal node size for UnitNode→core
// conversion; the Eridani nodes are uniform quad-cores.
func (s *Scheduler) typicalCores() int {
	counts := map[int]int{}
	for _, n := range s.nodes {
		counts[n.Cores]++
	}
	best, bestCount := 4, 0
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if counts[k] > bestCount {
			best, bestCount = k, counts[k]
		}
	}
	return best
}

func (s *Scheduler) kick() {
	if s.schedPending {
		return
	}
	s.schedPending = true
	s.eng.After(0, func() {
		s.schedPending = false
		s.schedule()
	})
}

// schedule runs one pass of the "Queued" policy. Without Backfill it
// is strict FCFS over the priority order: stop at the first job that
// does not fit. With Backfill the pass is EASY: the first blocked job
// becomes the pivot and gets a reservation at its shadow time — the
// earliest instant it fits once running jobs release their cores at
// their projected ends — and later jobs may start only when they
// cannot delay that reservation.
func (s *Scheduler) schedule() {
	if s.schedOverride != nil {
		s.schedOverride()
		return
	}
	var pivot *Job
	var rsv reservation
	for _, j := range s.QueuedJobs() {
		if pivot == nil {
			if s.tryPlace(j) {
				continue
			}
			if !s.Backfill {
				return
			}
			pivot = j
			rsv = s.reserve(pivot)
			continue
		}
		s.tryBackfill(j, pivot, &rsv)
	}
}

// reservation is the pivot's EASY booking: the shadow time plus the
// per-node free-core projection at that instant. ok is false when no
// projected future fits the pivot (its nodes are unreachable in the
// other OS) — nothing to protect, so backfill runs unrestricted.
type reservation struct {
	shadow time.Duration
	free   map[string]int
	ok     bool
}

// projectedEnd bounds when a running job releases its cores. The HPC
// job model carries no separate walltime estimate, so the runtime is
// the bound.
func projectedEnd(j *Job) time.Duration { return j.StartTime + j.Runtime }

// reserve computes the pivot's shadow state by replaying running
// jobs' projected releases onto the current free cores, in release
// order, until the pivot fits.
func (s *Scheduler) reserve(pivot *Job) reservation {
	free := make(map[string]int, len(s.nodeOrder))
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.state != NodeOnline {
			continue
		}
		free[name] = n.FreeCores()
	}
	running := s.RunningJobs()
	sort.SliceStable(running, func(i, j int) bool {
		return projectedEnd(running[i]) < projectedEnd(running[j])
	})
	for i := 0; i < len(running); {
		end := projectedEnd(running[i])
		for ; i < len(running) && projectedEnd(running[i]) == end; i++ {
			for _, a := range running[i].Alloc {
				if _, up := free[a.Node]; up {
					free[a.Node] += a.Cores
				}
			}
		}
		if s.fitsIn(free, pivot) {
			return reservation{shadow: end, free: free, ok: true}
		}
	}
	return reservation{}
}

// fitsIn checks a job against a per-node free-core projection:
// UnitNode jobs need that many wholly-free nodes, UnitCore jobs the
// core total.
func (s *Scheduler) fitsIn(free map[string]int, j *Job) bool {
	if j.Unit == UnitNode {
		have := 0
		for _, name := range s.nodeOrder {
			if c, up := free[name]; up && c >= s.nodes[name].Cores {
				have++
				if have == j.Count {
					return true
				}
			}
		}
		return false
	}
	total := 0
	for _, c := range free {
		total += c
	}
	return total >= j.Count
}

// tryBackfill starts a candidate behind the blocked pivot if it
// cannot delay the pivot's reservation: either it releases its cores
// by the shadow time, or the pivot still fits at the shadow time with
// the candidate's allocation subtracted. Long candidates that pass
// stay subtracted, so later candidates see the remaining slack only.
func (s *Scheduler) tryBackfill(j *Job, pivot *Job, rsv *reservation) bool {
	alloc := s.chooseAlloc(j)
	if alloc == nil {
		return false
	}
	if rsv.ok && s.eng.Now()+j.Runtime > rsv.shadow {
		for _, a := range alloc {
			rsv.free[a.Node] -= a.Cores
		}
		if !s.fitsIn(rsv.free, pivot) {
			for _, a := range alloc {
				rsv.free[a.Node] += a.Cores
			}
			return false
		}
	}
	s.commit(j, alloc)
	return true
}

// chooseAlloc selects an allocation for a job without committing it;
// nil when the job does not fit right now.
func (s *Scheduler) chooseAlloc(j *Job) []Allocation {
	var alloc []Allocation
	switch j.Unit {
	case UnitNode:
		for _, name := range s.nodeOrder {
			n := s.nodes[name]
			if n.state == NodeOnline && n.used == 0 {
				alloc = append(alloc, Allocation{Node: n.Name, Cores: n.Cores})
				if len(alloc) == j.Count {
					return alloc
				}
			}
		}
		return nil
	default: // UnitCore
		need := j.Count
		for _, name := range s.nodeOrder {
			n := s.nodes[name]
			take := n.FreeCores()
			if take == 0 {
				continue
			}
			if take > need {
				take = need
			}
			alloc = append(alloc, Allocation{Node: n.Name, Cores: take})
			need -= take
			if need == 0 {
				return alloc
			}
		}
		return nil
	}
}

// commit occupies an allocation and starts the job.
func (s *Scheduler) commit(j *Job, alloc []Allocation) {
	for _, a := range alloc {
		s.nodes[a.Node].used += a.Cores
	}
	j.Alloc = append(j.Alloc, alloc...)
	s.start(j)
}

func (s *Scheduler) tryPlace(j *Job) bool {
	alloc := s.chooseAlloc(j)
	if alloc == nil {
		return false
	}
	s.commit(j, alloc)
	return true
}

func (s *Scheduler) start(j *Job) {
	j.State = JobRunning
	j.StartTime = s.eng.Now()
	if s.OnJobStart != nil {
		s.OnJobStart(j)
	}
	if j.Exec != nil {
		j.Exec(j.AllocatedNodes())
	}
	s.eng.After(j.Runtime, func() {
		if j.State != JobRunning {
			return
		}
		s.release(j)
		j.State = JobFinished
		j.EndTime = s.eng.Now()
		s.notifyEnd(j)
		s.kick()
	})
}

func (s *Scheduler) release(j *Job) {
	for _, a := range j.Alloc {
		if n, ok := s.nodes[a.Node]; ok {
			n.used -= a.Cores
			if n.used < 0 {
				n.used = 0
			}
		}
	}
}

func (s *Scheduler) notifyEnd(j *Job) {
	if s.OnJobEnd != nil {
		s.OnJobEnd(j)
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
}
