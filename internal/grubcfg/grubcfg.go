// Package grubcfg parses and renders GRUB 0.97 / GRUB4DOS menu.lst
// configuration files — the control surface of dualboot-oscar. The
// middleware decides which operating system a node boots purely by
// rewriting these files, so the parser accepts the paper's artifacts
// (Figures 2 and 3) verbatim and the renderer produces files GRUB
// would accept back.
package grubcfg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/osid"
)

// DeviceRef is a GRUB device reference such as "(hd0,5)". GRUB counts
// both disks and partitions from zero, so (hd0,5) is Linux /dev/sda6.
type DeviceRef struct {
	Disk      int
	Partition int // -1 for a whole-disk reference like (hd0)
}

// String renders the reference in GRUB syntax.
func (d DeviceRef) String() string {
	if d.Partition < 0 {
		return fmt.Sprintf("(hd%d)", d.Disk)
	}
	return fmt.Sprintf("(hd%d,%d)", d.Disk, d.Partition)
}

// LinuxPartition converts GRUB's 0-based partition number to the
// 1-based index used by the Linux kernel and this repository's
// hardware model.
func (d DeviceRef) LinuxPartition() int { return d.Partition + 1 }

// DeviceForLinuxPartition builds a reference to a 1-based partition
// index on disk 0.
func DeviceForLinuxPartition(part int) DeviceRef {
	return DeviceRef{Disk: 0, Partition: part - 1}
}

// ParseDevice parses "(hdD,P)" or "(hdD)".
func ParseDevice(s string) (DeviceRef, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return DeviceRef{}, fmt.Errorf("grubcfg: device %q: missing parentheses", s)
	}
	body := s[1 : len(s)-1]
	if !strings.HasPrefix(body, "hd") {
		return DeviceRef{}, fmt.Errorf("grubcfg: device %q: only hd devices supported", s)
	}
	body = body[2:]
	diskStr, partStr, hasPart := strings.Cut(body, ",")
	disk, err := strconv.Atoi(strings.TrimSpace(diskStr))
	if err != nil || disk < 0 {
		return DeviceRef{}, fmt.Errorf("grubcfg: device %q: bad disk number", s)
	}
	if !hasPart {
		return DeviceRef{Disk: disk, Partition: -1}, nil
	}
	part, err := strconv.Atoi(strings.TrimSpace(partStr))
	if err != nil || part < 0 {
		return DeviceRef{}, fmt.Errorf("grubcfg: device %q: bad partition number", s)
	}
	return DeviceRef{Disk: disk, Partition: part}, nil
}

// Command is one line of an entry body: a command name and its raw
// argument string (e.g. "kernel", "/vmlinuz-2.6.18-164.el5 ro
// root=/dev/sda7 enforcing=0").
type Command struct {
	Name string
	Args string
}

// String renders the command as a menu.lst line.
func (c Command) String() string {
	if c.Args == "" {
		return c.Name
	}
	return c.Name + " " + c.Args
}

// Entry is a bootable menu entry introduced by a "title" line.
type Entry struct {
	Title    string
	Commands []Command
}

// Lookup returns the argument string of the first command with the
// given name.
func (e *Entry) Lookup(name string) (string, bool) {
	for _, c := range e.Commands {
		if c.Name == name {
			return c.Args, true
		}
	}
	return "", false
}

// Root returns the entry's root or rootnoverify device.
func (e *Entry) Root() (DeviceRef, bool) {
	for _, name := range []string{"root", "rootnoverify"} {
		if args, ok := e.Lookup(name); ok {
			dev, err := ParseDevice(args)
			if err == nil {
				return dev, true
			}
		}
	}
	return DeviceRef{}, false
}

// HasKernel reports whether the entry loads a Linux kernel.
func (e *Entry) HasKernel() bool {
	_, ok := e.Lookup("kernel")
	return ok
}

// HasChainloader reports whether the entry chainloads another boot
// sector ("chainloader +1" boots the root partition's own loader).
func (e *Entry) HasChainloader() bool {
	_, ok := e.Lookup("chainloader")
	return ok
}

// ConfigFile returns the path of a "configfile" redirection, the
// mechanism Figure 2 uses to hand control from the read-only Linux
// /boot to the shared FAT partition.
func (e *Entry) ConfigFile() (string, bool) {
	return e.Lookup("configfile")
}

// KernelPath returns the kernel image path (first kernel argument).
func (e *Entry) KernelPath() (string, bool) {
	args, ok := e.Lookup("kernel")
	if !ok {
		return "", false
	}
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// OS infers which operating system the entry boots: a kernel command
// means Linux, a chainloader means Windows (on this cluster the only
// chainloaded system is Windows Server), and otherwise the title
// suffix convention decides.
func (e *Entry) OS() osid.OS {
	if e.HasKernel() {
		return osid.Linux
	}
	if byTitle := osid.FromTitleSuffix(e.Title); byTitle.Valid() {
		return byTitle
	}
	if e.HasChainloader() {
		return osid.Windows
	}
	return osid.None
}

// Config is a parsed menu.lst: global directives followed by entries.
type Config struct {
	Default     int  // index of the default entry
	HasDefault  bool // whether a default directive was present
	Timeout     int  // seconds; -1 when absent
	HiddenMenu  bool
	SplashImage string
	Fallback    int       // -1 when absent
	Preamble    []Command // unrecognised global commands, preserved in order
	Entries     []*Entry
}

// New returns an empty config with unset optional fields.
func New() *Config {
	return &Config{Timeout: -1, Fallback: -1}
}

// Parse reads a menu.lst. Directive syntax follows GRUB legacy: global
// directives accept both "name value" and "name=value" spellings
// ("default=0" in Figure 2, "default 0" in Figure 3).
func Parse(data []byte) (*Config, error) {
	cfg := New()
	var cur *Entry
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, args := splitDirective(line)
		if name == "title" {
			cur = &Entry{Title: args}
			cfg.Entries = append(cfg.Entries, cur)
			continue
		}
		if cur != nil {
			cur.Commands = append(cur.Commands, Command{Name: name, Args: args})
			continue
		}
		if err := cfg.applyGlobal(name, args); err != nil {
			return nil, fmt.Errorf("grubcfg: line %d: %w", lineNo+1, err)
		}
	}
	if cfg.HasDefault && len(cfg.Entries) > 0 && cfg.Default >= len(cfg.Entries) {
		return nil, fmt.Errorf("grubcfg: default %d out of range (%d entries)", cfg.Default, len(cfg.Entries))
	}
	return cfg, nil
}

// splitDirective splits a line into a command name and argument
// string, treating "name=value" and "name value" alike.
func splitDirective(line string) (name, args string) {
	// GRUB treats '=' as a separator only for the first token.
	i := strings.IndexAny(line, " \t=")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i+1:])
}

func (c *Config) applyGlobal(name, args string) error {
	switch name {
	case "default":
		if args == "saved" {
			// "default saved" defers to a stored value; model as 0.
			c.Default = 0
			c.HasDefault = true
			return nil
		}
		n, err := strconv.Atoi(args)
		if err != nil || n < 0 {
			return fmt.Errorf("bad default %q", args)
		}
		c.Default = n
		c.HasDefault = true
	case "timeout":
		n, err := strconv.Atoi(args)
		if err != nil || n < 0 {
			return fmt.Errorf("bad timeout %q", args)
		}
		c.Timeout = n
	case "hiddenmenu":
		c.HiddenMenu = true
	case "splashimage":
		c.SplashImage = args
	case "fallback":
		n, err := strconv.Atoi(args)
		if err != nil || n < 0 {
			return fmt.Errorf("bad fallback %q", args)
		}
		c.Fallback = n
	default:
		c.Preamble = append(c.Preamble, Command{Name: name, Args: args})
	}
	return nil
}

// Render writes the config back out as a menu.lst.
func (c *Config) Render() []byte {
	var b strings.Builder
	if c.HasDefault {
		fmt.Fprintf(&b, "default %d\n", c.Default)
	}
	if c.Timeout >= 0 {
		fmt.Fprintf(&b, "timeout %d\n", c.Timeout)
	}
	if c.SplashImage != "" {
		fmt.Fprintf(&b, "splashimage %s\n", c.SplashImage)
	}
	if c.Fallback >= 0 {
		fmt.Fprintf(&b, "fallback %d\n", c.Fallback)
	}
	if c.HiddenMenu {
		b.WriteString("hiddenmenu\n")
	}
	for _, cmd := range c.Preamble {
		b.WriteString(cmd.String())
		b.WriteByte('\n')
	}
	for _, e := range c.Entries {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "title %s\n", e.Title)
		for _, cmd := range e.Commands {
			b.WriteString(cmd.String())
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// DefaultEntry resolves the entry GRUB would boot.
func (c *Config) DefaultEntry() (*Entry, error) {
	if len(c.Entries) == 0 {
		return nil, fmt.Errorf("grubcfg: no menu entries")
	}
	idx := 0
	if c.HasDefault {
		idx = c.Default
	}
	if idx >= len(c.Entries) {
		return nil, fmt.Errorf("grubcfg: default %d out of range", idx)
	}
	return c.Entries[idx], nil
}

// EntryIndexForOS finds the first entry booting the given OS.
func (c *Config) EntryIndexForOS(os osid.OS) (int, bool) {
	for i, e := range c.Entries {
		if e.OS() == os {
			return i, true
		}
	}
	return 0, false
}

// SetDefaultOS points the default directive at the first entry for the
// given OS — the core of what Carter's bootcontrol.pl does to a
// dual-boot machine.
func (c *Config) SetDefaultOS(os osid.OS) error {
	idx, ok := c.EntryIndexForOS(os)
	if !ok {
		return fmt.Errorf("grubcfg: no entry boots %v", os)
	}
	c.Default = idx
	c.HasDefault = true
	return nil
}
