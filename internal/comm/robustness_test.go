package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/detector"
	"repro/internal/osid"
)

// Robustness: the wire parser handles any byte sequence a peer (or a
// port scanner hitting the head node) might send.
func TestQuickParseLineNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		m, err := ParseLine(s)
		if err == nil {
			// Anything accepted must re-encode and re-parse to the
			// same message.
			back, err2 := ParseLine(m.Encode())
			if err2 != nil || back != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeState(b *testing.B) {
	m := Message{Kind: KindState, From: osid.Windows,
		Report: detector.Report{Stuck: true, NeededCPUs: 16, StuckJobID: "1191.eridani.qgg.hud.ac.uk"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(m.Encode()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkParseState(b *testing.B) {
	line := Message{Kind: KindState, From: osid.Windows,
		Report: detector.Report{Stuck: true, NeededCPUs: 16, StuckJobID: "1191.eridani.qgg.hud.ac.uk"}}.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}
