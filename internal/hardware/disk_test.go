package hardware

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDiskPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDisk(0) did not panic")
		}
	}()
	NewDisk(0)
}

func TestAddPartitionAccounting(t *testing.T) {
	d := NewDisk(250000)
	p1, err := d.AddPartition(1, 150000)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Index != 1 || p1.SizeMB != 150000 {
		t.Fatalf("p1 = %+v", p1)
	}
	if d.UsedMB() != 150000 || d.FreeMB() != 100000 {
		t.Fatalf("used=%d free=%d", d.UsedMB(), d.FreeMB())
	}
	if _, err := d.AddPartition(1, 10); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := d.AddPartition(2, 200000); err == nil {
		t.Fatal("oversize partition accepted")
	}
}

func TestAddPartitionRestOfDisk(t *testing.T) {
	d := NewDisk(1000)
	if _, err := d.AddPartition(1, 400); err != nil {
		t.Fatal(err)
	}
	p, err := d.AddPartition(2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeMB != 600 {
		t.Fatalf("rest-of-disk = %d MB, want 600", p.SizeMB)
	}
	if d.FreeMB() != 0 {
		t.Fatalf("free = %d, want 0", d.FreeMB())
	}
}

func TestAddPartitionInvalid(t *testing.T) {
	d := NewDisk(1000)
	if _, err := d.AddPartition(0, 10); err == nil {
		t.Fatal("index 0 accepted")
	}
	if _, err := d.AddPartition(1, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := d.AddPartition(1, -5); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestCreateNextPrimary(t *testing.T) {
	d := NewDisk(1000)
	for want := 1; want <= 4; want++ {
		p, err := d.CreateNextPrimary(100)
		if err != nil {
			t.Fatal(err)
		}
		if p.Index != want {
			t.Fatalf("primary slot = %d, want %d", p.Index, want)
		}
	}
	if _, err := d.CreateNextPrimary(100); err == nil {
		t.Fatal("fifth primary accepted")
	}
}

func TestCreateNextPrimarySkipsHoles(t *testing.T) {
	d := NewDisk(1000)
	if _, err := d.AddPartition(2, 100); err != nil {
		t.Fatal(err)
	}
	p, err := d.CreateNextPrimary(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Index != 1 {
		t.Fatalf("slot = %d, want 1", p.Index)
	}
}

func TestDeletePartition(t *testing.T) {
	d := NewDisk(1000)
	d.AddPartition(1, 100)
	if err := d.DeletePartition(1); err != nil {
		t.Fatal(err)
	}
	if d.HasPartition(1) {
		t.Fatal("partition survived delete")
	}
	if err := d.DeletePartition(1); err == nil {
		t.Fatal("double delete accepted")
	}
	if d.FreeMB() != 1000 {
		t.Fatalf("free = %d after delete", d.FreeMB())
	}
}

func TestCleanWipesEverything(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSNTFS)
	p.WriteFile("/x", []byte("data"))
	d.InstallGRUB(1, "/grub/menu.lst")
	d.Clean()
	if len(d.Partitions()) != 0 {
		t.Fatal("partitions survived Clean")
	}
	if d.MBR.Loader != BootNone {
		t.Fatal("MBR survived Clean")
	}
}

func TestFormatDestroysFiles(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSFAT)
	p.WriteFile("/controlmenu.lst", []byte("default 0"))
	if p.FileCount() != 1 {
		t.Fatal("file not written")
	}
	p.Format(FSFAT)
	if p.FileCount() != 0 {
		t.Fatal("files survived reformat")
	}
	if p.FormatCount() != 2 {
		t.Fatalf("FormatCount = %d, want 2", p.FormatCount())
	}
}

func TestWriteToUnformattedFails(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	if err := p.WriteFile("/x", nil); err == nil {
		t.Fatal("write to unformatted partition accepted")
	}
	p.Format(FSSwap)
	if err := p.WriteFile("/x", nil); err == nil {
		t.Fatal("write to swap accepted")
	}
}

func TestFileOps(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSExt3)
	if err := p.WriteFile("boot/grub/menu.lst", []byte("default=0")); err != nil {
		t.Fatal(err)
	}
	// path normalisation: leading slash optional, doubled slashes collapse
	got, err := p.ReadFile("//boot//grub/menu.lst")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "default=0" {
		t.Fatalf("read back %q", got)
	}
	if !p.HasFile("/boot/grub/menu.lst") {
		t.Fatal("HasFile false")
	}
	if _, err := p.ReadFile("/missing"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if err := p.RemoveFile("/missing"); err == nil {
		t.Fatal("remove of missing file succeeded")
	}
	if err := p.RemoveFile("/boot/grub/menu.lst"); err != nil {
		t.Fatal(err)
	}
	if p.FileCount() != 0 {
		t.Fatal("file not removed")
	}
}

func TestReadFileReturnsCopy(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSFAT)
	p.WriteFile("/f", []byte("abc"))
	got, _ := p.ReadFile("/f")
	got[0] = 'X'
	again, _ := p.ReadFile("/f")
	if string(again) != "abc" {
		t.Fatal("ReadFile aliases internal storage")
	}
}

func TestRenameFile(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSFAT)
	p.WriteFile("/controlmenu_to_windows.lst", []byte("win"))
	if err := p.RenameFile("/controlmenu_to_windows.lst", "/controlmenu.lst"); err != nil {
		t.Fatal(err)
	}
	if p.HasFile("/controlmenu_to_windows.lst") {
		t.Fatal("source survived rename")
	}
	data, err := p.ReadFile("/controlmenu.lst")
	if err != nil || string(data) != "win" {
		t.Fatalf("dest = %q, %v", data, err)
	}
	if err := p.RenameFile("/nope", "/x"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

func TestCopyFile(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSFAT)
	p.WriteFile("/a", []byte("orig"))
	if err := p.CopyFile("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	b, _ := p.ReadFile("/b")
	if string(b) != "orig" {
		t.Fatalf("copy = %q", b)
	}
	if !p.HasFile("/a") {
		t.Fatal("source lost on copy")
	}
}

func TestSetActive(t *testing.T) {
	d := NewDisk(1000)
	d.AddPartition(1, 100)
	d.AddPartition(2, 100)
	if err := d.SetActive(1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetActive(2); err != nil {
		t.Fatal(err)
	}
	p1, _ := d.Partition(1)
	p2, _ := d.Partition(2)
	if p1.Active || !p2.Active {
		t.Fatal("active flag not exclusive")
	}
	if err := d.SetActive(9); err == nil {
		t.Fatal("SetActive on missing partition succeeded")
	}
	ap, ok := d.ActivePartition()
	if !ok || ap.Index != 2 {
		t.Fatalf("ActivePartition = %v, %v", ap, ok)
	}
}

func TestSetActiveRejectsLogical(t *testing.T) {
	d := NewDisk(1000)
	d.AddPartition(5, 100)
	if err := d.SetActive(5); err == nil {
		t.Fatal("logical partition marked active")
	}
}

func TestInstallGRUBAndWindowsMBR(t *testing.T) {
	d := NewDisk(1000)
	if err := d.InstallGRUB(2, "/grub/menu.lst"); err == nil {
		t.Fatal("GRUB installed pointing at missing partition")
	}
	d.AddPartition(2, 100)
	if err := d.InstallGRUB(2, "grub/menu.lst"); err != nil {
		t.Fatal(err)
	}
	if d.MBR.Loader != BootGRUB || d.MBR.GrubConfigPartition != 2 || d.MBR.GrubConfigPath != "/grub/menu.lst" {
		t.Fatalf("MBR = %+v", d.MBR)
	}
	// Windows reimage rewrites the MBR and destroys GRUB (the v1 failure).
	d.InstallWindowsMBR()
	if d.MBR.Loader != BootWindows || d.MBR.GrubConfigPartition != 0 {
		t.Fatalf("MBR after Windows = %+v", d.MBR)
	}
}

func TestPartitionsSorted(t *testing.T) {
	d := NewDisk(1000)
	d.AddPartition(5, 10)
	d.AddPartition(1, 10)
	d.AddPartition(2, 10)
	var idx []int
	for _, p := range d.Partitions() {
		idx = append(idx, p.Index)
	}
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 5 {
		t.Fatalf("order = %v", idx)
	}
}

func TestDiskString(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSNTFS)
	p.Label = "Node"
	d.SetActive(1)
	s := d.String()
	for _, want := range []string{"1000MB", "ntfs", "active", `"Node"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFSTypeParseRoundTrip(t *testing.T) {
	for _, fs := range []FSType{FSNone, FSExt3, FSNTFS, FSFAT, FSSwap} {
		got, err := ParseFSType(fs.String())
		if err != nil || got != fs {
			t.Errorf("ParseFSType(%v.String()) = %v, %v", fs, got, err)
		}
	}
	if _, err := ParseFSType("zfs"); err == nil {
		t.Error("ParseFSType(zfs) succeeded")
	}
	for _, alias := range []string{"FAT32", "vfat", "msdos"} {
		got, err := ParseFSType(alias)
		if err != nil || got != FSFAT {
			t.Errorf("ParseFSType(%q) = %v, %v", alias, got, err)
		}
	}
}

// Property: used + free always equals disk size, regardless of the
// partition operations applied.
func TestQuickSpaceConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		d := NewDisk(1 << 20)
		idx := 1
		for _, s := range sizes {
			if _, err := d.AddPartition(idx, int64(s)+1); err == nil {
				idx++
			}
			if idx > 12 {
				break
			}
		}
		return d.UsedMB()+d.FreeMB() == d.SizeMB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: file write/read round-trips arbitrary contents.
func TestQuickFileRoundTrip(t *testing.T) {
	d := NewDisk(1000)
	p, _ := d.AddPartition(1, 500)
	p.Format(FSFAT)
	f := func(data []byte) bool {
		if err := p.WriteFile("/f", data); err != nil {
			return false
		}
		got, err := p.ReadFile("/f")
		return err == nil && string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
