package cluster

import (
	"testing"
	"time"

	"repro/internal/osid"
	"repro/internal/workload"
)

// A switch that never completes must not hang RunUntilDrained: the
// drain is bounded by the horizon, not by an iteration count.
func TestRunUntilDrainedStuckSwitchStopsAtHorizon(t *testing.T) {
	c, err := New(Config{Mode: HybridV2, Nodes: 4, InitialLinux: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge a node mid-switch with no pending event to release it —
	// the permanently-stuck case (e.g. a machine that powers off
	// during reboot and never reports back).
	c.nodes[0].Switching = true

	const horizon = 2 * time.Hour
	done := make(chan struct{})
	go func() {
		c.RunUntilDrained(horizon)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunUntilDrained did not terminate with a stuck switch")
	}
	if got := c.Eng.Now(); got != horizon {
		t.Fatalf("clock stopped at %v, want horizon %v", got, horizon)
	}
	if c.SwitchingCount() != 1 {
		t.Fatalf("stuck switch count = %d, want 1", c.SwitchingCount())
	}
}

// BootFailureProb must break nodes deterministically: the same seed
// yields the same casualties, and a zero probability never breaks
// anything.
func TestBootFailureInjection(t *testing.T) {
	trace := workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 6, Gap: time.Minute, App: "Backburner",
		OS: osid.Windows, Nodes: 2, PPN: 4, Runtime: 30 * time.Minute, Owner: "render",
	})
	run := func(prob float64) (broken int, summarySwitches int) {
		c, err := New(Config{
			Mode: HybridV2, Nodes: 8, InitialLinux: 8,
			Cycle: 5 * time.Minute, Seed: 11, BootFailureProb: prob,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := c.RunTrace(trace, 24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return c.BrokenCount(), sum.Switches
	}

	if broken, _ := run(0); broken != 0 {
		t.Fatalf("fault-free run broke %d nodes", broken)
	}
	b1, s1 := run(1)
	if b1 == 0 {
		t.Fatal("probability-1 faults broke no nodes")
	}
	b2, s2 := run(1)
	if b1 != b2 || s1 != s2 {
		t.Fatalf("same seed diverged: broken %d vs %d, switches %d vs %d", b1, b2, s1, s2)
	}
}

// steppedDrain replicates the fixed-step polling loop this package
// used before the event-driven quiescence driver, kept here as the
// wakeup baseline the acceptance benchmark compares against.
func steppedDrain(c *Cluster, maxHorizon time.Duration) {
	step := c.cfg.Cycle
	if step <= 0 {
		step = 10 * time.Minute
	}
	for c.Eng.Now() < maxHorizon {
		if c.toSubmit == 0 && c.unfinished == 0 && c.SwitchingCount() == 0 {
			break
		}
		next := c.Eng.Now() + step
		if next > maxHorizon {
			next = maxHorizon
		}
		c.Eng.RunUntil(next)
	}
	c.Quiesce()
	const rebootDrainStep = time.Minute
	for c.SwitchingCount() > 0 && c.Eng.Now() < maxHorizon {
		next := c.Eng.Now() + rebootDrainStep
		if next > maxHorizon {
			next = maxHorizon
		}
		c.Eng.RunUntil(next)
	}
}

// idleTailTrace is a 24h trace whose work is front-loaded: a Windows
// burst at time zero, then nothing until a single straggler at the
// 24h mark — the long idle tail the stepped loop polled through.
func idleTailTrace() workload.Trace {
	burst := workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 3, Gap: time.Minute, App: "Backburner",
		OS: osid.Windows, Nodes: 2, PPN: 4, Runtime: time.Hour, Owner: "render",
	})
	return append(burst, workload.Job{
		At: 24 * time.Hour, App: "Opera", OS: osid.Windows, Owner: "em",
		Nodes: 1, PPN: 4, Runtime: 30 * time.Minute,
	})
}

func idleTailConfig() Config {
	return Config{Mode: HybridV2, InitialLinux: 16, Cycle: 10 * time.Minute, Seed: 3}
}

// Acceptance criterion: on a 24h trace with a long idle tail the
// event-driven driver executes strictly fewer engine callbacks than
// the stepped baseline (which overshoots quiescence to its next step
// boundary, waking the controller once more for nothing) while
// completing the identical work.
func TestDriverFewerWakeupsThanSteppedBaseline(t *testing.T) {
	trace := idleTailTrace()
	const horizon = 72 * time.Hour

	base, err := New(idleTailConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.ScheduleTrace(trace); err != nil {
		t.Fatal(err)
	}
	steppedDrain(base, horizon)
	baseSum := base.Summary()

	drv, err := New(idleTailConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.ScheduleTrace(trace); err != nil {
		t.Fatal(err)
	}
	drv.RunUntilDrained(horizon)
	drvSum := drv.Summary()

	if got, want := drvSum.JobsCompleted[osid.Windows], baseSum.JobsCompleted[osid.Windows]; got != want {
		t.Fatalf("driver completed %d windows jobs, baseline %d", got, want)
	}
	if drvSum.JobsCompleted[osid.Windows] != len(trace) {
		t.Fatalf("completed %d of %d", drvSum.JobsCompleted[osid.Windows], len(trace))
	}
	if drv.Eng.EventsRun() >= base.Eng.EventsRun() {
		t.Fatalf("driver wakeups %d not below stepped baseline %d",
			drv.Eng.EventsRun(), base.Eng.EventsRun())
	}
	// The driver stops at the exact quiescence instant; the baseline
	// overshoots to a step boundary.
	if drv.Eng.Now() > base.Eng.Now() {
		t.Fatalf("driver stopped at %v, after baseline %v", drv.Eng.Now(), base.Eng.Now())
	}
}

// BenchmarkDrainWakeups reports the wakeup counts of both drain
// strategies on the idle-tailed trace; BENCH_sim.json tracks the
// driver numbers per experiment.
func BenchmarkDrainWakeups(b *testing.B) {
	run := func(b *testing.B, drain func(*Cluster, time.Duration)) {
		var events uint64
		for i := 0; i < b.N; i++ {
			c, err := New(idleTailConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := c.ScheduleTrace(idleTailTrace()); err != nil {
				b.Fatal(err)
			}
			drain(c, 72*time.Hour)
			events = c.Eng.EventsRun()
		}
		b.ReportMetric(float64(events), "events-run")
	}
	b.Run("stepped-baseline", func(b *testing.B) {
		run(b, steppedDrain)
	})
	b.Run("event-driven", func(b *testing.B) {
		run(b, func(c *Cluster, h time.Duration) { c.RunUntilDrained(h) })
	})
}
