package bootmgr

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/osid"
	"repro/internal/pxe"
)

// buildV1Disk provisions a node disk exactly like the paper's v1
// layout: Windows on sda1, /boot on sda2, swap on sda5, the shared FAT
// control partition on sda6 and the Linux root on sda7, with GRUB in
// the MBR redirecting to the FAT control menu (Figures 2 and 3).
func buildV1Disk(t *testing.T, defaultOS osid.OS) *hardware.Disk {
	t.Helper()
	d := hardware.NewDisk(250000)

	win, err := d.AddPartition(1, 150000)
	if err != nil {
		t.Fatal(err)
	}
	win.Format(hardware.FSNTFS)
	win.Label = "Node"
	if err := win.WriteFile(WindowsBootFile, []byte("win bootmgr")); err != nil {
		t.Fatal(err)
	}
	d.SetActive(1)

	boot, err := d.AddPartition(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	boot.Format(hardware.FSExt3)
	if err := boot.WriteFile("/vmlinuz-2.6.18-164.el5", []byte("kernel")); err != nil {
		t.Fatal(err)
	}
	if err := boot.WriteFile("/sc-initrd-2.6.18-164.el5.gz", []byte("initrd")); err != nil {
		t.Fatal(err)
	}
	redirect := grubcfg.RedirectMenu(grubcfg.DeviceRef{Disk: 0, Partition: 5}, "/controlmenu.lst")
	if err := boot.WriteFile("/grub/menu.lst", redirect.Render()); err != nil {
		t.Fatal(err)
	}

	swap, err := d.AddPartition(5, 512)
	if err != nil {
		t.Fatal(err)
	}
	swap.Format(hardware.FSSwap)

	fat, err := d.AddPartition(6, 100)
	if err != nil {
		t.Fatal(err)
	}
	fat.Format(hardware.FSFAT)
	ctl, err := grubcfg.ControlMenu(grubcfg.DefaultLinuxEntry(), grubcfg.DefaultWindowsEntry(), defaultOS)
	if err != nil {
		t.Fatal(err)
	}
	if err := fat.WriteFile(grubcfg.ControlFileName, ctl.Render()); err != nil {
		t.Fatal(err)
	}
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		staged, err := grubcfg.ControlMenu(grubcfg.DefaultLinuxEntry(), grubcfg.DefaultWindowsEntry(), os)
		if err != nil {
			t.Fatal(err)
		}
		if err := fat.WriteFile(grubcfg.StagedControlFileName(os), staged.Render()); err != nil {
			t.Fatal(err)
		}
	}

	root, err := d.AddPartition(7, -1)
	if err != nil {
		t.Fatal(err)
	}
	root.Format(hardware.FSExt3)
	if err := root.WriteFile(LinuxReleaseFile, []byte("CentOS release 5.4")); err != nil {
		t.Fatal(err)
	}

	// The linux entry in the control menu uses root (hd0,1) = sda2 and
	// kernel /vmlinuz-... — i.e. the kernel lives on the /boot
	// partition, which is what buildV1Disk wrote above.
	if err := d.InstallGRUB(2, "/grub/menu.lst"); err != nil {
		t.Fatal(err)
	}
	return d
}

func newV1Node(t *testing.T, defaultOS osid.OS) *hardware.Node {
	t.Helper()
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	n.Disk = buildV1Disk(t, defaultOS)
	return n
}

func noJitterEnv() Env {
	return Env{Latency: DefaultLatencyModel()}
}

func TestV1BootLinuxViaConfigfileRedirect(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Linux {
		t.Fatalf("booted %v, want linux", res.OS)
	}
	if res.Source != hardware.BootFromDisk {
		t.Fatalf("source = %v", res.Source)
	}
	trace := strings.Join(res.Steps, "\n")
	if !strings.Contains(trace, "configfile /controlmenu.lst") {
		t.Errorf("redirect not followed:\n%s", trace)
	}
	if !strings.Contains(trace, "CentOS-5.4_Oscar-5b2-linux") {
		t.Errorf("wrong entry:\n%s", trace)
	}
}

func TestV1BootWindowsViaChainloader(t *testing.T) {
	n := newV1Node(t, osid.Windows)
	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("booted %v, want windows", res.OS)
	}
	trace := strings.Join(res.Steps, "\n")
	if !strings.Contains(trace, "chainloader") || !strings.Contains(trace, "Windows bootmgr") {
		t.Errorf("chainload not traced:\n%s", trace)
	}
}

func TestV1SwitchByRenamingStagedMenu(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	fat, _ := n.Disk.Partition(6)
	// The v1 batch script: rename controlmenu_to_windows.lst into place.
	if err := fat.RemoveFile(grubcfg.ControlFileName); err != nil {
		t.Fatal(err)
	}
	if err := fat.RenameFile(grubcfg.StagedControlFileName(osid.Windows), grubcfg.ControlFileName); err != nil {
		t.Fatal(err)
	}
	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("after rename boots %v, want windows", res.OS)
	}
}

func TestWindowsMBRBootsActivePartition(t *testing.T) {
	// A fresh Windows deployment rewrites the MBR; with the generic
	// loader the node can only ever boot Windows — the v1 trap.
	n := newV1Node(t, osid.Linux)
	n.Disk.InstallWindowsMBR()
	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("Windows MBR boots %v", res.OS)
	}
}

func TestWindowsMBRNoActivePartition(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	n.Disk.InstallWindowsMBR()
	for _, p := range n.Disk.Partitions() {
		p.Active = false
	}
	_, err := Boot(n, noJitterEnv())
	if err == nil {
		t.Fatal("boot succeeded with no active partition")
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("error type %T", err)
	}
}

func TestEmptyMBRNoBootableDevice(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 1})
	_, err := Boot(n, noJitterEnv())
	if err == nil || !strings.Contains(err.Error(), "no bootable device") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingKernelFails(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	boot, _ := n.Disk.Partition(2)
	boot.RemoveFile("/vmlinuz-2.6.18-164.el5")
	_, err := Boot(n, noJitterEnv())
	if err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingControlMenuFails(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	fat, _ := n.Disk.Partition(6)
	fat.RemoveFile(grubcfg.ControlFileName)
	_, err := Boot(n, noJitterEnv())
	if err == nil || !strings.Contains(err.Error(), "configfile read") {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigfileLoopDetected(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	fat, _ := n.Disk.Partition(6)
	// controlmenu.lst redirecting to itself
	loop := grubcfg.RedirectMenu(grubcfg.DeviceRef{Disk: 0, Partition: 5}, "/controlmenu.lst")
	fat.WriteFile(grubcfg.ControlFileName, loop.Render())
	_, err := Boot(n, noJitterEnv())
	if err == nil || !strings.Contains(err.Error(), "redirection loop") {
		t.Fatalf("err = %v", err)
	}
}

func TestChainloadToNonWindowsPartitionFails(t *testing.T) {
	n := newV1Node(t, osid.Windows)
	win, _ := n.Disk.Partition(1)
	win.Format(hardware.FSNTFS) // wipes bootmgr
	_, err := Boot(n, noJitterEnv())
	if err == nil || !strings.Contains(err.Error(), "no bootable system") {
		t.Fatalf("err = %v", err)
	}
}

func newPXENode(t *testing.T) (*hardware.Node, *pxe.Service) {
	t.Helper()
	n := hardware.NewNode(hardware.NodeSpec{Index: 1, PXEFirst: true})
	n.Disk = buildV1Disk(t, osid.Linux)
	svc, err := pxe.NewService(pxe.Config{Mode: pxe.ModeFlag})
	if err != nil {
		t.Fatal(err)
	}
	return n, svc
}

func TestPXEBootFollowsFlag(t *testing.T) {
	n, svc := newPXENode(t)
	env := Env{PXE: svc, Latency: DefaultLatencyModel()}

	res, err := Boot(n, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Linux || res.Source != hardware.BootFromPXE {
		t.Fatalf("res = %+v", res)
	}

	if err := svc.SetFlag(osid.Windows); err != nil {
		t.Fatal(err)
	}
	res, err = Boot(n, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("after flag flip boots %v", res.OS)
	}
}

func TestPXEDisabledFallsBackToDisk(t *testing.T) {
	n, svc := newPXENode(t)
	svc.SetEnabled(false)
	res, err := Boot(n, Env{PXE: svc, Latency: DefaultLatencyModel()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != hardware.BootFromDisk {
		t.Fatalf("source = %v, want disk fallback", res.Source)
	}
}

func TestPXENilServiceFallsBack(t *testing.T) {
	n, _ := newPXENode(t)
	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != hardware.BootFromDisk {
		t.Fatalf("source = %v", res.Source)
	}
}

func TestPXEWindowsChainloadsLocalDisk(t *testing.T) {
	n, svc := newPXENode(t)
	svc.SetFlag(osid.Windows)
	res, err := Boot(n, Env{PXE: svc, Latency: DefaultLatencyModel()})
	if err != nil {
		t.Fatal(err)
	}
	if res.OS != osid.Windows {
		t.Fatalf("OS = %v", res.OS)
	}
	// Even though the menu came from the network, Windows boots from
	// the local NTFS partition.
	if !strings.Contains(strings.Join(res.Steps, "\n"), "Windows bootmgr on partition 1") {
		t.Fatalf("steps = %v", res.Steps)
	}
}

func TestLatencyWithinFiveMinutes(t *testing.T) {
	m := DefaultLatencyModel()
	for _, target := range []osid.OS{osid.Linux, osid.Windows} {
		for _, viaPXE := range []bool{false, true} {
			lat := SwitchLatency(m, target, viaPXE, 10)
			if lat > 5*time.Minute {
				t.Errorf("switch to %v (pxe=%v) = %v, exceeds paper's 5-minute bound", target, viaPXE, lat)
			}
			if lat < time.Minute {
				t.Errorf("switch to %v (pxe=%v) = %v, implausibly fast", target, viaPXE, lat)
			}
		}
	}
}

func TestLatencyWindowsSlowerThanLinux(t *testing.T) {
	m := DefaultLatencyModel()
	if SwitchLatency(m, osid.Windows, true, 3) <= SwitchLatency(m, osid.Linux, true, 3) {
		t.Fatal("Windows boot should be slower than Linux")
	}
}

func TestBootLatencyDeterministicWithoutRand(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	r1, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Latency != r2.Latency {
		t.Fatalf("latency not deterministic: %v vs %v", r1.Latency, r2.Latency)
	}
}

func TestBootLatencyJitterBounded(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	base, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	m := DefaultLatencyModel()
	for i := 0; i < 50; i++ {
		res, err := Boot(n, Env{Latency: m, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		lo := time.Duration(float64(base.Latency) * (1 - m.JitterFrac - 1e-9))
		hi := time.Duration(float64(base.Latency) * (1 + m.JitterFrac + 1e-9))
		if res.Latency < lo || res.Latency > hi {
			t.Fatalf("jittered latency %v outside [%v, %v]", res.Latency, lo, hi)
		}
	}
}

func TestGRUBTimeoutContributesToLatency(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	fast, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Raise the control menu timeout from 10 to 60 seconds.
	fat, _ := n.Disk.Partition(6)
	data, _ := fat.ReadFile(grubcfg.ControlFileName)
	cfg, _ := grubcfg.Parse(data)
	cfg.Timeout = 60
	fat.WriteFile(grubcfg.ControlFileName, cfg.Render())
	slow, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Latency-fast.Latency != 50*time.Second {
		t.Fatalf("timeout delta = %v, want 50s", slow.Latency-fast.Latency)
	}
}

func TestBootErrorFormat(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 2})
	_, err := Boot(n, noJitterEnv())
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("error type %T", err)
	}
	if be.Node != n.Name || len(be.Steps) == 0 {
		t.Fatalf("error = %+v", be)
	}
	if !strings.Contains(be.Error(), "POST") {
		t.Fatalf("Error() = %q lacks step trace", be.Error())
	}
}

func TestFallbackEntryUsedWhenDefaultFails(t *testing.T) {
	n := newV1Node(t, osid.Windows)
	// Break the Windows side (default) but leave Linux intact, and add
	// a fallback directive pointing at the Linux entry.
	win, _ := n.Disk.Partition(1)
	win.RemoveFile(WindowsBootFile)
	fat, _ := n.Disk.Partition(6)
	data, _ := fat.ReadFile(grubcfg.ControlFileName)
	cfg, err := grubcfg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := cfg.EntryIndexForOS(osid.Linux)
	if !ok {
		t.Fatal("no linux entry")
	}
	cfg.Fallback = idx
	fat.WriteFile(grubcfg.ControlFileName, cfg.Render())

	res, err := Boot(n, noJitterEnv())
	if err != nil {
		t.Fatalf("fallback did not rescue the boot: %v", err)
	}
	if res.OS != osid.Linux {
		t.Fatalf("fallback booted %v, want linux", res.OS)
	}
	if !strings.Contains(strings.Join(res.Steps, "\n"), "fallback") {
		t.Fatalf("fallback not traced: %v", res.Steps)
	}
}

func TestFallbackSameAsDefaultStillFails(t *testing.T) {
	n := newV1Node(t, osid.Windows)
	win, _ := n.Disk.Partition(1)
	win.RemoveFile(WindowsBootFile)
	fat, _ := n.Disk.Partition(6)
	data, _ := fat.ReadFile(grubcfg.ControlFileName)
	cfg, _ := grubcfg.Parse(data)
	// fallback identical to the default entry: no rescue possible
	cfg.Fallback = cfg.Default
	fat.WriteFile(grubcfg.ControlFileName, cfg.Render())
	if _, err := Boot(n, noJitterEnv()); err == nil {
		t.Fatal("boot succeeded with broken default and self-fallback")
	}
}

func TestFallbackOutOfRangeIgnored(t *testing.T) {
	n := newV1Node(t, osid.Windows)
	win, _ := n.Disk.Partition(1)
	win.RemoveFile(WindowsBootFile)
	fat, _ := n.Disk.Partition(6)
	data, _ := fat.ReadFile(grubcfg.ControlFileName)
	cfg, _ := grubcfg.Parse(data)
	cfg.Fallback = 99
	fat.WriteFile(grubcfg.ControlFileName, cfg.Render())
	if _, err := Boot(n, noJitterEnv()); err == nil {
		t.Fatal("boot succeeded with broken default and bogus fallback")
	}
}

func TestBootErrorUnwrap(t *testing.T) {
	n := hardware.NewNode(hardware.NodeSpec{Index: 3})
	_, err := Boot(n, noJitterEnv())
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("error type %T", err)
	}
	if be.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestPXEMenuUnparseable(t *testing.T) {
	n, svc := newPXENode(t)
	svc.PutFile(pxe.DefaultMenuPath, []byte("default nonsense\n"))
	// Replacing the default menu with garbage: since the ROM loaded,
	// the failure is terminal, not a fallthrough.
	if _, err := Boot(n, Env{PXE: svc, Latency: DefaultLatencyModel()}); err == nil {
		t.Fatal("garbage PXE menu booted")
	}
}

func TestPXEKernelMissingFromTFTP(t *testing.T) {
	n, svc := newPXENode(t)
	// Break the TFTP tree: menu points at a kernel that is not there.
	menu := grubcfg.New()
	menu.HasDefault = true
	menu.Entries = []*grubcfg.Entry{{
		Title:    "net-linux",
		Commands: []grubcfg.Command{{Name: "kernel", Args: "(pd)/missing-kernel root=/dev/sda6"}},
	}}
	svc.PutFile(pxe.DefaultMenuPath, menu.Render())
	if _, err := Boot(n, Env{PXE: svc, Latency: DefaultLatencyModel()}); err == nil || !strings.Contains(err.Error(), "kernel fetch") {
		t.Fatalf("err = %v", err)
	}
}

func TestPXEKernelEntryWithoutService(t *testing.T) {
	// A (pd) kernel entry in a local menu with no PXE service fails.
	n := newV1Node(t, osid.Linux)
	fat, _ := n.Disk.Partition(6)
	menu := grubcfg.New()
	menu.HasDefault = true
	menu.Entries = []*grubcfg.Entry{{
		Title:    "net-linux",
		Commands: []grubcfg.Command{{Name: "kernel", Args: "(pd)/vmlinuz root=/dev/sda7"}},
	}}
	fat.WriteFile(grubcfg.ControlFileName, menu.Render())
	if _, err := Boot(n, noJitterEnv()); err == nil || !strings.Contains(err.Error(), "no PXE service") {
		t.Fatalf("err = %v", err)
	}
}

func TestEntryWithNoActionFails(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	fat, _ := n.Disk.Partition(6)
	menu := grubcfg.New()
	menu.HasDefault = true
	menu.Entries = []*grubcfg.Entry{{Title: "empty", Commands: []grubcfg.Command{{Name: "root", Args: "(hd0,1)"}}}}
	fat.WriteFile(grubcfg.ControlFileName, menu.Render())
	if _, err := Boot(n, noJitterEnv()); err == nil || !strings.Contains(err.Error(), "no kernel, chainloader or configfile") {
		t.Fatalf("err = %v", err)
	}
}

func TestEntryRootDeviceMissingPartition(t *testing.T) {
	n := newV1Node(t, osid.Linux)
	fat, _ := n.Disk.Partition(6)
	menu := grubcfg.New()
	menu.HasDefault = true
	menu.Entries = []*grubcfg.Entry{{
		Title:    "bad-root",
		Commands: []grubcfg.Command{{Name: "root", Args: "(hd0,8)"}, {Name: "chainloader", Args: "+1"}},
	}}
	fat.WriteFile(grubcfg.ControlFileName, menu.Render())
	if _, err := Boot(n, noJitterEnv()); err == nil || !strings.Contains(err.Error(), "GRUB root") {
		t.Fatalf("err = %v", err)
	}
}
