package simtime

import (
	"sort"
	"time"
)

// This file implements the engine's event queue as an indexed
// calendar/bucket queue. The near-future band — a fixed window of
// fixed-width buckets — absorbs the overwhelming majority of
// scheduling traffic (immediate kicks, ticker hops, job completions a
// few minutes out) with O(1) amortised insert and pop. Events due
// beyond the window wait in a (due, seq) min-heap and migrate into
// buckets when the window advances past them. Cancelled timers are
// discarded lazily at pop time (Timer.Stop settles the live/foreground
// accounting immediately), so cancellation never pays the O(n) removal
// a flat heap would need.
//
// Correctness contract: events pop in exactly the total order
// (due, seq) that the previous flat container/heap implementation
// produced, so every run's callback sequence — and therefore its
// EventsRun count — is byte-identical. TestCalendarMatchesReferenceHeap
// fuzzes this equivalence.
const (
	// calWidth is the bucket granularity. One second comfortably
	// separates the simulator's natural event spacings (sub-second
	// kicks land in the current bucket, minute-scale ticks a few
	// buckets out) without making the window scan long.
	calWidth = time.Second
	// calBuckets sizes the near-future window (calBuckets × calWidth ≈
	// 34 simulated minutes). Job completions typically overshoot it and
	// take one far-heap hop — the same cost they paid in the flat heap.
	calBuckets = 2048
)

// bucket holds the events of one calendar slot. Events are appended on
// insert and consumed front-to-back through head; sorted records
// whether the unconsumed tail is known to be in (due, seq) order, so a
// sort runs only when an out-of-order insert actually happened.
type bucket struct {
	evs    []*event
	head   int
	sorted bool
}

// calendar is the two-band event queue: buckets cover
// [base, horizon) and far holds everything at or beyond horizon.
type calendar struct {
	base    time.Duration // start of the bucket window
	horizon time.Duration // base + calBuckets*calWidth
	cur     int           // first possibly-unconsumed bucket
	inNear  int           // events resident in buckets
	far     farHeap       // events with due >= horizon
	size    int           // all queued events, dead included
	buckets []bucket
}

func newCalendar() *calendar {
	return &calendar{
		horizon: time.Duration(calBuckets) * calWidth,
		buckets: make([]bucket, calBuckets),
	}
}

// push enqueues an event. due is immutable after insertion.
func (c *calendar) push(ev *event) {
	c.size++
	if ev.due >= c.horizon {
		c.far.push(ev)
		return
	}
	idx := int((ev.due - c.base) / calWidth)
	if idx < 0 {
		// The window was rebuilt beyond the clock (sparse tail); the
		// first bucket catches everything due before it — the in-bucket
		// sort keeps the order exact.
		idx = 0
	}
	if idx < c.cur {
		// An exhausted bucket is receiving new work (the clock sits
		// behind the seek point after a deadline jump): rewind the seek.
		c.cur = idx
	}
	b := &c.buckets[idx]
	if n := len(b.evs); n == b.head {
		b.sorted = true
	} else if b.sorted {
		last := b.evs[n-1]
		if ev.due < last.due || (ev.due == last.due && ev.seq < last.seq) {
			b.sorted = false
		}
	}
	b.evs = append(b.evs, ev)
	c.inNear++
}

// pop removes and returns the globally next event by (due, seq), dead
// or alive; nil when the queue is empty.
func (c *calendar) pop() *event {
	ev := c.next(true)
	if ev != nil {
		c.size--
	}
	return ev
}

// peek returns the next event without consuming it (it still reaps
// nothing — dead-event reaping happens in the engine's loops, which
// pop). nil when empty.
func (c *calendar) peek() *event { return c.next(false) }

// next seeks the earliest event. consume removes it from its band.
func (c *calendar) next(consume bool) *event {
	for {
		for c.cur < calBuckets {
			b := &c.buckets[c.cur]
			if b.head == len(b.evs) {
				if c.inNear == 0 {
					// Nothing left anywhere in the window: jump the
					// seek to the end rather than walking empty slots.
					c.cur = calBuckets
					break
				}
				c.cur++
				continue
			}
			if !b.sorted {
				tail := b.evs[b.head:]
				sort.Slice(tail, func(i, j int) bool {
					if tail[i].due != tail[j].due {
						return tail[i].due < tail[j].due
					}
					return tail[i].seq < tail[j].seq
				})
				b.sorted = true
			}
			ev := b.evs[b.head]
			if consume {
				b.evs[b.head] = nil
				b.head++
				c.inNear--
			}
			return ev
		}
		// Window exhausted: rebuild it around the far heap's earliest
		// event, or report empty.
		if c.far.Len() == 0 {
			return nil
		}
		top := c.far.min()
		c.base = top.due - top.due%calWidth
		c.horizon = c.base + time.Duration(calBuckets)*calWidth
		c.cur = 0
		for i := range c.buckets {
			b := &c.buckets[i]
			b.evs = b.evs[:0]
			b.head = 0
			b.sorted = true
		}
		for c.far.Len() > 0 && c.far.min().due < c.horizon {
			ev := c.far.popMin()
			idx := int((ev.due - c.base) / calWidth)
			b := &c.buckets[idx]
			// Migration pops the far heap in (due, seq) order, so each
			// bucket fills already sorted.
			b.evs = append(b.evs, ev)
			c.inNear++
		}
	}
}

// farHeap is a plain (due, seq) min-heap over events beyond the
// calendar window.
type farHeap []*event

func (h farHeap) Len() int    { return len(h) }
func (h farHeap) min() *event { return h[0] }
func (h farHeap) less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}

func (h *farHeap) push(ev *event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *farHeap) popMin() *event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}
