package service

import (
	"testing"

	"repro/internal/sweep"
)

func swfSpec(path string) sweep.Spec {
	return sweep.Spec{Grid: sweep.Grid{
		Traces: []sweep.TraceSpec{{Kind: sweep.TraceSWF, SWFFile: path, WindowsFrac: 0.3}},
	}}
}

func TestCheckSpecPathsRejectsAbsolute(t *testing.T) {
	err := CheckSpecPaths(swfSpec("/etc/passwd"))
	if err == nil {
		t.Fatal("absolute swf path accepted")
	}
	t.Logf("rejected: %v", err)
}

func TestCheckSpecPathsRejectsTraversal(t *testing.T) {
	for _, p := range []string{
		"../secrets.swf",
		"specs/../../outside.swf",
		"specs/sub/../../../outside.swf",
		"..",
	} {
		if err := CheckSpecPaths(swfSpec(p)); err == nil {
			t.Errorf("traversal path %q accepted", p)
		}
	}
}

func TestCheckSpecPathsAcceptsWorkingTreePaths(t *testing.T) {
	for _, p := range []string{
		"specs/pwa_sample_1k.swf",
		"traces/anl_intrepid.swf",
		"a..b/weird..name.swf", // ".." inside a segment is not traversal
	} {
		if err := CheckSpecPaths(swfSpec(p)); err != nil {
			t.Errorf("relative path %q rejected: %v", p, err)
		}
	}
}

func TestCheckSpecPathsIgnoresNonSWFTraces(t *testing.T) {
	sp := sweep.Spec{Grid: sweep.Grid{
		Traces: []sweep.TraceSpec{{Kind: sweep.TracePoisson, JobsPerHour: 3, WindowsFrac: 0.3}},
	}}
	if err := CheckSpecPaths(sp); err != nil {
		t.Fatalf("non-swf trace rejected: %v", err)
	}
}
