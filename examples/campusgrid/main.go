// Campus-grid comparison: the same demanding workload — wide MPI jobs
// that overflow a fixed half-cluster — through all four cluster
// organisations the paper discusses: static split, mono-stable hybrid,
// dualboot-oscar v1 and v2.
//
//	go run ./examples/campusgrid
package main

import (
	"fmt"
	"log"
	"time"

	hybridcluster "repro"

	"repro/internal/workload"
)

func main() {
	// Phased demand: alternating Linux- and Windows-heavy phases, each
	// led by a 10-node job that a static 8-node half can never run.
	trace := workload.PhasedWideMix(workload.PhasedConfig{
		Seed: 21, Phases: 8, WindowsFrac: 0.5,
	})
	fmt.Printf("workload: %d jobs across 8 demand phases (wide jobs need 10 of 16 nodes)\n\n", len(trace))

	results, err := hybridcluster.CompareModes(
		[]hybridcluster.ClusterMode{
			hybridcluster.Static,
			hybridcluster.MonoStable,
			hybridcluster.HybridV1,
			hybridcluster.HybridV2,
		},
		hybridcluster.ClusterConfig{InitialLinux: 8, Cycle: 5 * time.Minute},
		trace,
		96*time.Hour,
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(hybridcluster.ComparisonTable(results))
	fmt.Println()
	for _, r := range results {
		total := r.Summary.JobsCompleted[hybridcluster.Linux] + r.Summary.JobsCompleted[hybridcluster.Windows]
		fmt.Printf("%-13s util %5.1f%%  completed %2d/%d  control-actions %d\n",
			r.Name, r.Summary.Utilisation*100, total, len(trace), r.ControlActions)
	}
	fmt.Println("\nthe static split strands every wide job; the hybrids lend the idle half.")
}
