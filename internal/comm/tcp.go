package comm

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// This file is the live transport: the same codec as the Bus but over
// real TCP sockets, mirroring the paper's Cygwin-compiled C++
// communicator on the Windows head and the Perl communicator on the
// Linux head. One message per connection: send a line, read an ACK.

// TCPServer listens for protocol messages.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// ListenTCP starts a server on addr (e.g. "127.0.0.1:0") delivering
// messages to h from the connection's remote address.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	if h == nil {
		return nil, fmt.Errorf("comm: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *TCPServer) serve(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //simlint:allow walltime -- real socket I/O deadline, not simulation time
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	m, err := ParseLine(line)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	s.handler(conn.RemoteAddr().String(), m)
	fmt.Fprintf(conn, "%s\n", Message{Kind: KindAck}.Encode())
}

// SendTCP delivers one message to a server and waits for the ACK.
func SendTCP(addr string, m Message, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout)) //simlint:allow walltime -- real socket I/O deadline, not simulation time
	if _, err := fmt.Fprintf(conn, "%s\n", m.Encode()); err != nil {
		return fmt.Errorf("comm: send: %w", err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("comm: await ack: %w", err)
	}
	ack, err := ParseLine(resp)
	if err != nil || ack.Kind != KindAck {
		return fmt.Errorf("comm: bad ack %q", resp)
	}
	return nil
}
