// Fixture for the globalrand analyzer: a clean file — the repo's
// sanctioned pattern. Generators are *rand.Rand values built from
// deterministic (coordinate-derived) seeds and threaded explicitly;
// methods on a threaded generator are fine, as are references to the
// package's types.
package globalrand

import "math/rand"

type jitter struct {
	// Referencing rand.Rand and rand.Source as types is not a use of
	// global state.
	rng *rand.Rand
	src rand.Source
}

func clean(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func threaded(rng *rand.Rand) float64 {
	return rng.Float64()
}
