// Package pbs simulates the Torque/PBS batch system that OSCAR
// installs on the Linux head node. The simulation covers what
// dualboot-oscar interacts with: qsub with #PBS directives (Figure 4),
// a strict FCFS scheduler whose head-of-line blocking produces the
// "stuck" queue states the detector looks for, node state tracking,
// and the `qstat -f` / `pbsnodes` text output (Figures 7 and 8) that
// the detector scrapes because "PBS does not provide APIs".
package pbs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// JobState is the single-letter PBS job state.
type JobState byte

const (
	StateQueued   JobState = 'Q'
	StateRunning  JobState = 'R'
	StateExiting  JobState = 'E'
	StateComplete JobState = 'C'
	StateHeld     JobState = 'H'
)

// String returns the one-letter state code.
func (s JobState) String() string { return string(rune(s)) }

// ExecSlot is one virtual processor assignment: a node name and a CPU
// index on that node.
type ExecSlot struct {
	Node string
	CPU  int
}

// Job is a PBS batch job.
type Job struct {
	ID     string // "1185.eridani.qgg.hud.ac.uk"
	SeqNo  int
	Name   string
	Owner  string
	State  JobState
	Queue  string
	Server string

	// Resource request: nodes=Nodes:ppn=PPN.
	Nodes int
	PPN   int

	// Runtime is how long the job actually runs once started.
	Runtime time.Duration
	// Walltime is the requested limit (0 = unlimited). Jobs whose
	// Runtime exceeds Walltime are killed at the limit.
	Walltime time.Duration

	Priority   int
	Rerunnable bool
	JoinOE     bool
	OutputPath string

	QTime     time.Duration // submission (virtual time)
	StartTime time.Duration
	EndTime   time.Duration

	ExecHost []ExecSlot

	// Exec, when non-nil, runs at job start. dualboot-oscar packs the
	// OS switch action into such a job (Figure 4): change the boot
	// default, then reboot.
	Exec func(hosts []string)
	// OnEnd, when non-nil, runs when the job finishes or is killed.
	OnEnd func(j *Job)

	killedAtLimit bool
	failed        bool

	// Scheduler ledger bookkeeping: inQueue flags an entry in the
	// server's queued slice (states Q and H, plus stale entries waiting
	// for compaction); runIdx is the job's slot in the running slice
	// while in state R.
	inQueue bool
	runIdx  int
}

// CPUs returns the total virtual processors the job needs.
func (j *Job) CPUs() int { return j.Nodes * j.PPN }

// KilledAtWalltime reports whether the job hit its walltime limit.
func (j *Job) KilledAtWalltime() bool { return j.killedAtLimit }

// Failed reports whether the job died without completing its work —
// a non-rerunnable job interrupted by node loss. Walltime kills are
// reported separately through KilledAtWalltime.
func (j *Job) Failed() bool { return j.failed }

// ExecHostString renders the exec_host attribute the way PBS does:
// "node16/3+node16/2+node16/1+node16/0".
func (j *Job) ExecHostString(domain string) string {
	parts := make([]string, len(j.ExecHost))
	for i, s := range j.ExecHost {
		parts[i] = fmt.Sprintf("%s/%d", fqdn(s.Node, domain), s.CPU)
	}
	return strings.Join(parts, "+")
}

// SubmitRequest is the programmatic form of qsub.
type SubmitRequest struct {
	Name     string
	Owner    string
	Queue    string
	Nodes    int
	PPN      int
	Runtime  time.Duration
	Walltime time.Duration
	Priority int
	JoinOE   bool
	Output   string
	Rerun    bool
	Exec     func(hosts []string)
	OnEnd    func(j *Job)
}

// normalise applies PBS defaults.
func (r *SubmitRequest) normalise() error {
	if r.Nodes <= 0 {
		r.Nodes = 1
	}
	if r.PPN <= 0 {
		r.PPN = 1
	}
	if r.Runtime < 0 {
		return fmt.Errorf("pbs: negative runtime")
	}
	if r.Name == "" {
		r.Name = "STDIN"
	}
	if r.Owner == "" {
		r.Owner = "nobody"
	}
	return nil
}

// ScriptJob is the result of parsing a PBS job script.
type ScriptJob struct {
	Request  SubmitRequest
	Commands []string // non-directive, non-comment lines
}

// ParseScript parses a job script with #PBS directives, accepting the
// paper's Figure 4 verbatim. Supported directives: -l nodes=N:ppn=M,
// -l walltime=HH:MM:SS, -N name, -q queue, -j oe, -o path, -r y|n,
// -p priority.
func ParseScript(script string) (*ScriptJob, error) {
	out := &ScriptJob{}
	req := &out.Request
	for lineNo, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#PBS") {
			directive := strings.TrimSpace(strings.TrimPrefix(line, "#PBS"))
			if directive == "" {
				continue
			}
			if err := applyDirective(req, directive); err != nil {
				return nil, fmt.Errorf("pbs: script line %d: %w", lineNo+1, err)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment, including the shebang-adjacent banner
		}
		out.Commands = append(out.Commands, line)
	}
	if err := req.normalise(); err != nil {
		return nil, err
	}
	return out, nil
}

func applyDirective(req *SubmitRequest, directive string) error {
	flag, rest, _ := strings.Cut(directive, " ")
	rest = strings.TrimSpace(rest)
	switch flag {
	case "-l":
		return applyResourceList(req, rest)
	case "-N":
		if rest == "" {
			return fmt.Errorf("-N needs a name")
		}
		req.Name = rest
	case "-q":
		req.Queue = rest
	case "-j":
		req.JoinOE = rest == "oe"
	case "-o":
		req.Output = rest
	case "-r":
		req.Rerun = rest == "y"
	case "-p":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Errorf("bad priority %q", rest)
		}
		req.Priority = n
	default:
		// Unknown directives are ignored, as qsub does for unsupported
		// attribute flags in simple deployments.
	}
	return nil
}

// applyResourceList parses "-l" values: "nodes=1:ppn=4",
// "walltime=01:00:00", or comma-separated combinations.
func applyResourceList(req *SubmitRequest, spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("bad resource %q", item)
		}
		switch key {
		case "nodes":
			nodes, ppn, err := parseNodesSpec(val)
			if err != nil {
				return err
			}
			req.Nodes, req.PPN = nodes, ppn
		case "walltime":
			d, err := parseWalltime(val)
			if err != nil {
				return err
			}
			req.Walltime = d
		default:
			// other resources (mem, etc.) not modelled
		}
	}
	return nil
}

// parseNodesSpec parses "1:ppn=4" (also bare "2" meaning ppn=1).
func parseNodesSpec(val string) (nodes, ppn int, err error) {
	ppn = 1
	parts := strings.Split(val, ":")
	nodes, err = strconv.Atoi(parts[0])
	if err != nil || nodes <= 0 {
		return 0, 0, fmt.Errorf("bad nodes spec %q", val)
	}
	for _, p := range parts[1:] {
		if after, ok := strings.CutPrefix(p, "ppn="); ok {
			ppn, err = strconv.Atoi(after)
			if err != nil || ppn <= 0 {
				return 0, 0, fmt.Errorf("bad ppn in %q", val)
			}
		}
		// node properties (":all" etc.) accepted and ignored
	}
	return nodes, ppn, nil
}

// parseWalltime parses "HH:MM:SS" or "MM:SS" or plain seconds.
func parseWalltime(val string) (time.Duration, error) {
	parts := strings.Split(val, ":")
	var h, m, s int
	var err error
	switch len(parts) {
	case 1:
		s, err = strconv.Atoi(parts[0])
	case 2:
		m, err = strconv.Atoi(parts[0])
		if err == nil {
			s, err = strconv.Atoi(parts[1])
		}
	case 3:
		h, err = strconv.Atoi(parts[0])
		if err == nil {
			m, err = strconv.Atoi(parts[1])
		}
		if err == nil {
			s, err = strconv.Atoi(parts[2])
		}
	default:
		return 0, fmt.Errorf("bad walltime %q", val)
	}
	if err != nil || h < 0 || m < 0 || s < 0 {
		return 0, fmt.Errorf("bad walltime %q", val)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(s)*time.Second, nil
}

func fqdn(name, domain string) string {
	if domain == "" || strings.Contains(name, ".") {
		return name
	}
	return name + "." + domain
}
