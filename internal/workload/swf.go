package workload

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/osid"
)

// This file ingests Standard Workload Format (SWF) logs — the format
// the Parallel Workloads Archive publishes real supercomputer traces
// in — so published job streams replay through the simulator beside
// the synthetic generators. An SWF log is line-oriented: lines starting
// with ";" are header directives ("; MaxNodes: 128") or comments, and
// every data line carries the same 18 whitespace-separated numeric
// fields, with -1 marking a missing value.

// SWF field indices (0-based) per the PWA definition.
const (
	swfJobID = iota
	swfSubmit
	swfWait
	swfRunTime
	swfAllocProcs
	swfAvgCPU
	swfUsedMem
	swfReqProcs
	swfReqTime
	swfReqMem
	swfStatus
	swfUser
	swfGroup
	swfExecutable
	swfQueue
	swfPartition
	swfPrecedingJob
	swfThinkTime
	swfFields // = 18
)

// SWFHeader holds the log's ";"-directive lines as key → value text
// ("MaxNodes" → "128"). Directives repeat in some archive logs; the
// last occurrence wins.
type SWFHeader map[string]string

// SWFConfig parameterises the SWF → Trace mapping. The zero value
// replays the whole log with used runtimes, a 4-cores-per-node shape,
// and every job on Linux.
type SWFConfig struct {
	// Seed salts the deterministic platform-assignment hash. SWF logs
	// carry no OS column, so each job is assigned a side by hashing
	// (Seed, job number): the same seed always yields the same
	// assignment, independent of read order or truncation.
	Seed int64
	// WindowsFrac is the fraction of jobs assigned to Windows (0..1).
	WindowsFrac float64
	// PPN is the cores-per-node used to fold the log's flat processor
	// counts into the simulator's nodes × ppn job shape (default 4).
	// A job asking for fewer than PPN processors becomes 1 × procs;
	// wider jobs become ceil(procs/PPN) × PPN.
	PPN int
	// MaxJobs keeps only the first MaxJobs usable records (0 = all).
	MaxJobs int
	// Window keeps only jobs submitted within Window of the first
	// kept job (0 = the whole log). Submission times are normalised so
	// the first kept job arrives at time zero.
	Window time.Duration
	// TargetNodes rescales job widths so the log's widest job spans
	// TargetNodes nodes (0 = keep the log's widths). Use it to fit an
	// archive trace from a big machine onto a small simulated topology.
	TargetNodes int
	// UseRequested prefers the requested (walltime-estimate) runtime
	// field over the used one. Whichever field is preferred, the other
	// stands in when the preferred one is a -1 sentinel.
	UseRequested bool
}

// ReadSWFFile reads an SWF log from disk.
func ReadSWFFile(path string, cfg SWFConfig) (Trace, SWFHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	trace, hdr, err := ReadSWF(f, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return trace, hdr, nil
}

// ReadSWF parses a Standard Workload Format log into a Trace.
//
// Mapping, per record: submit time (field 2, normalised to the first
// kept job) becomes the submission offset; the used runtime (field 4,
// or the requested time per SWFConfig.UseRequested, each falling back
// to the other on a -1 sentinel) becomes the runtime; the requested
// processor count (field 8, falling back to allocated, field 5) is
// folded into nodes × ppn via SWFConfig.PPN; the user id becomes the
// owner and the executable number the application name; and the OS is
// assigned by the deterministic (Seed, job number) hash.
//
// Records whose sentinels leave no usable processor count or runtime
// are skipped — they describe jobs that never ran (cancelled before
// start) and carry no load. Malformed input — a data line with the
// wrong field count, a non-numeric field, a negative value that is not
// the -1 sentinel, or submit times running backwards — is an error
// naming the offending line. A log with no usable job records (e.g. a
// header-only file) is an error too.
func ReadSWF(r io.Reader, cfg SWFConfig) (Trace, SWFHeader, error) {
	if cfg.PPN <= 0 {
		cfg.PPN = 4
	}
	header := SWFHeader{}
	var trace Trace
	var maxNodes int
	var base, prevSubmit float64
	first := true
	truncated := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if key, val, ok := strings.Cut(strings.TrimLeft(line, "; \t"), ":"); ok {
				key = strings.TrimSpace(key)
				if key != "" {
					header[key] = strings.TrimSpace(val)
				}
			}
			continue
		}
		if truncated {
			// MaxJobs / Window reached: the rest of the log is cut off,
			// not validated.
			break
		}
		fields := strings.Fields(line)
		if len(fields) != swfFields {
			return nil, header, fmt.Errorf("swf line %d: %d fields, want %d", lineno, len(fields), swfFields)
		}
		rec := make([]float64, swfFields)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, header, fmt.Errorf("swf line %d: field %d: bad number %q", lineno, i+1, f)
			}
			if v < 0 && v != -1 {
				return nil, header, fmt.Errorf("swf line %d: field %d: negative value %v is not the -1 sentinel", lineno, i+1, v)
			}
			rec[i] = v
		}
		submit := rec[swfSubmit]
		if submit == -1 {
			return nil, header, fmt.Errorf("swf line %d: missing submit time", lineno)
		}
		if !first && submit < prevSubmit {
			return nil, header, fmt.Errorf("swf line %d: submit time %v runs backwards (previous %v)", lineno, submit, prevSubmit)
		}
		prevSubmit = submit

		procs := rec[swfReqProcs]
		if procs <= 0 {
			procs = rec[swfAllocProcs]
		}
		runtime := rec[swfRunTime]
		requested := rec[swfReqTime]
		if cfg.UseRequested {
			runtime, requested = requested, runtime
		}
		if runtime <= 0 {
			runtime = requested
		}
		if procs <= 0 || runtime <= 0 {
			continue // sentinel-only record: the job never ran
		}
		if first {
			base = submit
			first = false
		}
		at := time.Duration((submit - base) * float64(time.Second))
		if cfg.Window > 0 && at > cfg.Window {
			truncated = true
			continue
		}

		nodes, ppn := 1, int(procs)
		if ppn > cfg.PPN {
			nodes = (ppn + cfg.PPN - 1) / cfg.PPN
			ppn = cfg.PPN
		}
		if nodes > maxNodes {
			maxNodes = nodes
		}
		owner := "unknown"
		if rec[swfUser] >= 0 {
			owner = fmt.Sprintf("u%d", int(rec[swfUser]))
		}
		app := "swf-app"
		if rec[swfExecutable] >= 0 {
			app = fmt.Sprintf("swf-app%d", int(rec[swfExecutable]))
		}
		trace = append(trace, Job{
			At:      at,
			App:     app,
			OS:      swfPlatform(cfg.Seed, int64(rec[swfJobID]), cfg.WindowsFrac),
			Owner:   owner,
			Nodes:   nodes,
			PPN:     ppn,
			Runtime: time.Duration(runtime * float64(time.Second)),
		})
		if cfg.MaxJobs > 0 && len(trace) >= cfg.MaxJobs {
			truncated = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, header, fmt.Errorf("swf line %d: %w", lineno, err)
	}
	if len(trace) == 0 {
		return nil, header, fmt.Errorf("swf: no usable job records (%d lines read)", lineno)
	}
	if cfg.TargetNodes > 0 && maxNodes > 0 && cfg.TargetNodes != maxNodes {
		f := float64(cfg.TargetNodes) / float64(maxNodes)
		for i := range trace {
			n := int(math.Round(float64(trace[i].Nodes) * f))
			if n < 1 {
				n = 1
			}
			trace[i].Nodes = n
		}
	}
	if err := trace.Validate(); err != nil {
		return nil, header, fmt.Errorf("swf: %w", err)
	}
	return trace, header, nil
}

// swfPlatform deterministically assigns a job to an OS: an FNV-1a hash
// of (seed, job number) mapped to [0,1) and compared against the
// Windows fraction. Pure function of its inputs — the assignment never
// depends on read order, truncation, or any RNG stream.
func swfPlatform(seed, jobID int64, winFrac float64) osid.OS {
	if winFrac <= 0 {
		return osid.Linux
	}
	if winFrac >= 1 {
		return osid.Windows
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", seed, jobID)
	// FNV-1a's high bits avalanche poorly on short sequential inputs,
	// so finish with a splitmix64-style mix before mapping to [0,1).
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(uint64(1)<<53) // 53-bit mantissa, uniform [0,1)
	if u < winFrac {
		return osid.Windows
	}
	return osid.Linux
}
