package cluster

import (
	"fmt"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/controller"
	"repro/internal/detector"
	"repro/internal/hardware"
	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/pxe"
	"repro/internal/winhpc"
)

// This file implements controller.Gateway: how the daemons observe the
// two sides and how switch orders become batch jobs and reboots.

// SideInfo implements controller.Gateway.
func (c *Cluster) SideInfo(os osid.OS) controller.SideState {
	s := controller.SideState{
		OS:            os,
		CoresPerNode:  c.cfg.CoresPerNode,
		PendingAway:   c.pending[os],
		ArrivedCPUs:   c.arrived[os],
		SwitchLatency: c.SwitchLatencyEstimate(os),
	}
	var det detector.Detector
	switch os {
	case osid.Linux:
		det = c.pbsDet
		stats := c.PBS.QueueStats()
		s.RunningJobs = stats.Running
		s.QueuedJobs = stats.Queued
		s.QueuedCPUs = stats.QueuedCPUs
	case osid.Windows:
		det = c.winDet
		snap := c.Win.Snapshot()
		s.RunningJobs = snap.Running
		s.QueuedJobs = snap.Queued
		s.QueuedCPUs = snap.PendingCores
	default:
		return s
	}
	if rep, err := det.Detect(); err == nil {
		s.Report = rep
	}
	for _, n := range c.nodes {
		if n.OS != os || n.Switching {
			continue
		}
		s.TotalNodes++
		if c.nodeIdle(n) {
			s.IdleNodes++
		}
	}
	return s
}

// SwitchJobScript renders the Figure-4 PBS batch script for a switch
// to the target OS; the v1 Linux donor path parses and submits it so
// the artifact drives the real request shape.
func (c *Cluster) SwitchJobScript(target osid.OS) string {
	return fmt.Sprintf(`#!/bin/bash
#PBS -l nodes=1:ppn=%d
#PBS -N release_1_node
#PBS -q default
#PBS -j oe
#PBS -o reboot_log.out
#PBS -r n
echo $PBS_JOBID >>/home/dualboot/reboot_log/rebootjob.log #write logs
sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst %s #changes default boot OS
sudo reboot #reboot node
sleep 10 #leave 10 seconds to avoid job be finished before reboot
`, c.cfg.CoresPerNode, target)
}

// OrderSwitch implements controller.Gateway: submit switch batch jobs
// on the donor side. Submitting through the scheduler is the paper's
// central trick — "job scheduler can automatically locate free nodes,
// and all the running jobs can be protected from other accidental
// operations".
func (c *Cluster) OrderSwitch(donor, target osid.OS, count int) int {
	if count <= 0 || !donor.Valid() || !target.Valid() || donor == target {
		return 0
	}
	// In the final v2 design the cluster-wide flag is set once per
	// order batch (step 4 in Figure 11: "Set Target OS Flag"). The
	// per-MAC variant cannot act here — the daemon does not yet know
	// which machine the scheduler will book (the Figure-12 problem) —
	// so its menu write happens inside the switch job instead.
	if c.cfg.Mode != HybridV1 && c.PXE != nil && c.PXE.Mode() == pxe.ModeFlag {
		if c.PXE.Flag() != target {
			if err := c.PXE.SetFlag(target); err != nil {
				c.logf("pxe flag error: %v", err)
				return 0
			}
			c.controlActions++
			c.logf("pxe: target OS flag -> %s", target)
		}
	}
	submitted := 0
	for i := 0; i < count; i++ {
		if c.submitSwitchJob(donor, target) {
			submitted++
		}
	}
	return submitted
}

// submitSwitchJob books one full node on the donor side; when the job
// runs it performs the version-specific boot-config action and on exit
// the node reboots.
func (c *Cluster) submitSwitchJob(donor, target osid.OS) bool {
	var bookedHost string
	exec := func(hosts []string) {
		if len(hosts) == 0 {
			return
		}
		bookedHost = hosts[0]
		// Point the booked node's boot config at the target: the FAT
		// rewrite for v1 (bootcontrol.pl), the per-MAC menu for the
		// Figure-12 variant, and a no-op in flag mode (the flag was
		// set before submission).
		if n, ok := c.byName[bookedHost]; ok {
			if err := c.pointBootConfig([]*Node{n}, target); err != nil {
				c.logf("boot config edit failed on %s: %v", bookedHost, err)
				return
			}
			c.logf("switch job: %s boot config -> %s", bookedHost, target)
		}
	}
	onEnd := func() {
		c.pending[donor]--
		if bookedHost == "" {
			return // job died before placement (node loss)
		}
		c.beginSwitch(bookedHost, target)
	}

	switch donor {
	case osid.Linux:
		script := c.SwitchJobScript(target)
		parsed, err := pbs.ParseScript(script)
		if err != nil {
			c.logf("switch script parse error: %v", err)
			return false
		}
		req := parsed.Request
		req.Owner = "dualboot@" + c.PBS.Name()
		req.Runtime = c.cfg.SwitchJobRuntime
		req.Exec = exec
		req.OnEnd = func(*pbs.Job) { onEnd() }
		if _, err := c.PBS.Qsub(req); err != nil {
			c.logf("switch qsub failed: %v", err)
			return false
		}
	case osid.Windows:
		_, err := c.Win.SubmitJob(winhpc.JobSpec{
			Name:    "release_1_node",
			Owner:   "HPC\\dualboot",
			Unit:    winhpc.UnitNode,
			Count:   1,
			Runtime: c.cfg.SwitchJobRuntime,
			Exec:    exec,
			OnEnd:   func(*winhpc.Job) { onEnd() },
		})
		if err != nil {
			c.logf("switch submit failed: %v", err)
			return false
		}
	default:
		return false
	}
	c.pending[donor]++
	return true
}

// beginSwitch takes a node through shutdown → boot chain → re-register
// on the target side. The boot chain is evaluated *after* shutdown, so
// a v2 flag flip during shutdown redirects the node — faithful to the
// single-flag design.
func (c *Cluster) beginSwitch(name string, target osid.OS) {
	n, ok := c.byName[name]
	if !ok || n.Switching || n.Broken {
		return
	}
	from := n.OS
	n.Switching = true
	n.Target = target
	n.OS = osid.None
	n.HW.Power = hardware.PowerShuttingDown
	c.Rec.SwitchStarted(name, from, target)
	c.Rec.NodeDown(from)
	c.logf("switch: %s %s -> %s (shutdown)", name, from, target)

	// Deregister from the donor scheduler.
	switch from {
	case osid.Linux:
		_ = c.PBS.SetNodeAvailable(name, false)
	case osid.Windows:
		_ = c.Win.SetNodeOnline(name, false)
	}

	c.Eng.After(c.cfg.Latency.Shutdown, func() {
		n.HW.Power = hardware.PowerBooting
		if c.cfg.BootFailureProb > 0 && c.rng.Float64() < c.cfg.BootFailureProb {
			c.markBootFailed(n, "switch", fmt.Errorf("injected hardware fault"))
			return
		}
		res, err := bootmgr.Boot(n.HW, bootmgr.Env{
			PXE:     c.PXE,
			Latency: *c.cfg.Latency,
			Rand:    c.rng,
		})
		if err != nil {
			c.markBootFailed(n, "switch", err)
			return
		}
		c.Eng.After(res.Latency, func() {
			n.Switching = false
			n.Target = osid.None
			n.OS = res.OS
			n.HW.Power = hardware.PowerOn
			n.HW.BootedOS = res.OS
			switch res.OS {
			case osid.Linux:
				_ = c.PBS.SetNodeAvailable(name, true)
			case osid.Windows:
				_ = c.Win.SetNodeOnline(name, true)
			}
			c.Rec.NodeUp(res.OS)
			c.Rec.SwitchFinished(name, res.OS == target)
			c.logf("switch: %s up in %s after %v", name, res.OS, c.cfg.Latency.Shutdown+res.Latency)
			c.notifySwitchLanded(name, res.OS, res.OS == target)
		})
	})
}

// markBootFailed records a boot-chain casualty: the node leaves the
// switching state broken and powered off, out of service until an
// administrator intervenes. Injected faults and real boot-chain
// errors share this bookkeeping so the two paths cannot diverge.
func (c *Cluster) markBootFailed(n *Node, context string, err error) {
	n.Switching = false
	n.Broken = true
	n.HW.Power = hardware.PowerOff
	c.Rec.SwitchFinished(n.HW.Name, false)
	c.logf("%s: %s boot FAILED: %v", context, n.HW.Name, err)
	c.notifySwitchLanded(n.HW.Name, osid.None, false)
}

// ForceSwitch reboots a specific idle node immediately (administrative
// action / tests); it bypasses the scheduler booking.
func (c *Cluster) ForceSwitch(name string, target osid.OS) error {
	n, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", name)
	}
	if n.Switching {
		return fmt.Errorf("cluster: %s already switching", name)
	}
	if err := c.pointBootConfig([]*Node{n}, target); err != nil {
		return err
	}
	c.beginSwitch(name, target)
	return nil
}

// SwitchLatencyEstimate returns the planning estimate for a switch on
// this cluster's configuration.
func (c *Cluster) SwitchLatencyEstimate(target osid.OS) time.Duration {
	viaPXE := c.cfg.Mode != HybridV1
	grubSec := 10 // control menu timeout
	if viaPXE {
		grubSec = 3 // PXE menu timeout
	}
	return bootmgr.SwitchLatency(*c.cfg.Latency, target, viaPXE, grubSec)
}

var _ controller.Gateway = (*Cluster)(nil)
