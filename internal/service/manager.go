package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/export"
	"repro/internal/sweep"
)

// Job states. A job is born queued, transitions to running when the
// executor picks it up, and ends done or failed. Every transition is
// fsynced to the job's record before it is announced, so the on-disk
// state never runs ahead of what observers were told. A daemon killed
// while a job is queued or running re-enqueues it on the next start.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submitted sweep: the persisted record under
// <state-dir>/jobs/<id>.json and the API's wire shape. Records carry
// no timestamps — the state directory, like every other artifact, is
// a pure function of what was submitted.
type Job struct {
	ID string `json:"id"`
	// Name echoes the spec document's name field.
	Name string `json:"name,omitempty"`
	// SpecHash is the content address of the job's canonical spec
	// bytes (sweep.SpecHash) — the key of its checkpoints and its
	// cache entry.
	SpecHash string `json:"spec_hash"`
	State    string `json:"state"`
	// Cells is the grid's expansion size; CellsDone counts finished
	// cells (advisory while running — recovery recomputes it from the
	// checkpoint directory).
	Cells     int `json:"cells"`
	CellsDone int `json:"cells_done"`
	// Cached marks a job answered entirely from the result cache —
	// no cell ran.
	Cached bool `json:"cached,omitempty"`
	// Error is the failure reason of a failed job.
	Error string `json:"error,omitempty"`
}

// manager owns the job table, the pending queue and the single
// executor loop. One job executes at a time — parallelism lives
// inside the job, where sweep.Run's worker pool keeps the
// workers-1-vs-N byte-identity guarantee — so two jobs can never
// interleave their state transitions.
type manager struct {
	st      *store
	bc      *broadcaster
	workers int
	// root is the spec root: the only directory a served spec's swf
	// trace paths may resolve into (see confineSpecPaths).
	root string

	mu     sync.Mutex
	jobs   map[string]*Job
	byHash map[string]string // spec hash -> job id serving that spec
	seq    int

	qmu     sync.Mutex
	qcond   *sync.Cond
	pending []string
	stopped bool

	stopCh   chan struct{}
	stopOnce sync.Once
	started  bool
	loopDone chan struct{}

	// cellHook is a test seam: called after each cell's checkpoint
	// and event have landed, outside all manager locks. The
	// crash-recovery test uses it to stop the daemon at an exact
	// point in the sweep.
	cellHook func(jobID string, index, done int)
}

// newManager opens the job table from the state store and recovers
// interrupted work: every job found queued or running is reset to
// queued (its CellsDone recomputed from the checkpoint directory) and
// re-enqueued in ID order.
func newManager(st *store, workers int, root string) (*manager, error) {
	m := &manager{
		st:       st,
		bc:       newBroadcaster(),
		workers:  workers,
		root:     root,
		jobs:     map[string]*Job{},
		byHash:   map[string]string{},
		stopCh:   make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	m.qcond = sync.NewCond(&m.qmu)

	entries, err := os.ReadDir(st.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(st.jobPath(strings.TrimSuffix(name, ".json")))
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		var j Job
		if err := json.Unmarshal(b, &j); err != nil {
			return nil, fmt.Errorf("service: job record %s: %w", name, err)
		}
		m.jobs[j.ID] = &j
		ids = append(ids, j.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(j.ID, "j")); err == nil && n > m.seq {
			m.seq = n
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := m.jobs[id]
		// The hash index prefers a done job (its result is live in the
		// cache); otherwise the earliest non-failed job serves the
		// hash. Failed jobs never do — resubmitting retries.
		if cur, ok := m.byHash[j.SpecHash]; !ok {
			if j.State != StateFailed {
				m.byHash[j.SpecHash] = id
			}
		} else if m.jobs[cur].State != StateDone && j.State == StateDone {
			m.byHash[j.SpecHash] = id
		}
	}
	for _, id := range ids {
		j := m.jobs[id]
		if j.State != StateQueued && j.State != StateRunning {
			continue
		}
		j.State = StateQueued
		j.CellsDone = m.st.countCheckpoints(j.SpecHash)
		if err := m.persistLocked(j); err != nil {
			return nil, err
		}
		m.pending = append(m.pending, id)
	}
	return m, nil
}

// start launches the executor loop.
func (m *manager) start() {
	m.started = true
	go m.runLoop()
}

// stop cancels the in-flight sweep (between cells) and stops the
// executor loop. Idempotent.
func (m *manager) stop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.qmu.Lock()
	m.stopped = true
	m.qcond.Broadcast()
	m.qmu.Unlock()
}

// wait blocks until the executor loop has exited — after it returns,
// nothing writes to the state directory anymore.
func (m *manager) wait() {
	if m.started {
		<-m.loopDone
	}
}

// stopped reports the channel closed by stop; the SSE handlers select
// on it so shutdown does not hang on open streams.
func (m *manager) stopping() <-chan struct{} { return m.stopCh }

func (m *manager) runLoop() {
	defer close(m.loopDone)
	for {
		m.qmu.Lock()
		for len(m.pending) == 0 && !m.stopped {
			m.qcond.Wait()
		}
		if m.stopped {
			m.qmu.Unlock()
			return
		}
		id := m.pending[0]
		m.pending = m.pending[1:]
		m.qmu.Unlock()
		m.execute(id)
	}
}

func (m *manager) enqueue(id string) {
	m.qmu.Lock()
	m.pending = append(m.pending, id)
	m.qcond.Signal()
	m.qmu.Unlock()
}

// submit registers a spec: an existing non-failed job for the same
// content address is returned as-is (created=false); otherwise a new
// job is created — born done when the cache already holds the
// result, queued otherwise.
func (m *manager) submit(sp sweep.Spec, canonical []byte, hash string) (Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.byHash[hash]; ok {
		if j := m.jobs[id]; j != nil && j.State != StateFailed {
			return *j, false, nil
		}
	}
	if !fileExists(m.st.specPath(hash)) {
		if err := writeFileSync(m.st.specPath(hash), canonical); err != nil {
			return Job{}, false, err
		}
	}
	m.seq++
	job := &Job{
		ID:       fmt.Sprintf("j%06d", m.seq),
		Name:     sp.Name,
		SpecHash: hash,
		State:    StateQueued,
		Cells:    len(sp.Grid.Expand()),
	}
	fromCache := m.st.cacheHas(hash)
	if fromCache {
		job.State = StateDone
		job.Cached = true
		job.CellsDone = job.Cells
	}
	if err := m.persistLocked(job); err != nil {
		return Job{}, false, err
	}
	m.jobs[job.ID] = job
	m.byHash[hash] = job.ID
	m.bc.emit(Event{Type: "queued", Job: job.ID, Total: job.Cells})
	if fromCache {
		m.bc.emit(Event{Type: "done", Job: job.ID, Done: job.Cells, Total: job.Cells, Cached: true})
	} else {
		m.enqueue(job.ID)
	}
	return *job, true, nil
}

// job returns a copy of a job record.
func (m *manager) job(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

func (m *manager) jobCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// execute runs one queued job to completion (or to cancellation —
// in which case the job is deliberately left running on disk, the
// exact state a crash leaves, so the next start resumes it).
func (m *manager) execute(id string) {
	m.mu.Lock()
	job := m.jobs[id]
	if job == nil || job.State == StateDone || job.State == StateFailed {
		m.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.CellsDone = 0 // recounted as cells land, checkpointed ones included
	perr := m.persistLocked(job)
	hash, total := job.SpecHash, job.Cells
	m.mu.Unlock()
	if perr != nil {
		m.fail(job, perr)
		return
	}
	m.bc.emit(Event{Type: "running", Job: id, Total: total})

	f, err := os.Open(m.st.specPath(hash))
	if err != nil {
		m.fail(job, err)
		return
	}
	sp, err := sweep.LoadSpec(f)
	f.Close()
	if err != nil {
		m.fail(job, err)
		return
	}
	// Re-pin the spec's trace paths to the server root. The canonical
	// bytes store the paths as submitted (relative, guard-checked), so
	// every execution — first run or post-crash resume — must confine
	// them again before the sweep opens a file.
	sp, err = confineSpecPaths(sp, m.root)
	if err != nil {
		m.fail(job, err)
		return
	}
	if m.st.cacheHas(hash) {
		m.finish(job, true)
		return
	}

	out, err := sweep.Run(sweep.Config{
		Grid:    sp.Grid,
		Workers: m.workers,
		Cancel:  m.stopCh,
		Cached: func(c sweep.Cell) (sweep.CellResult, bool) {
			return m.st.loadCheckpoint(hash, c)
		},
		Progress: func(r sweep.CellResult) { m.onCell(job, total, r) },
	})
	if err != nil {
		m.fail(job, err)
		return
	}
	for _, r := range out.Results {
		if errors.Is(r.Err, sweep.ErrCanceled) {
			return // interrupted: resume from checkpoints on next start
		}
	}
	var csv, js bytes.Buffer
	if err := export.WriteSweepCSV(&csv, out.Rows()); err != nil {
		m.fail(job, err)
		return
	}
	if err := export.WriteSweepJSON(&js, out.Rows()); err != nil {
		m.fail(job, err)
		return
	}
	if err := m.st.writeCache(hash, csv.Bytes(), js.Bytes()); err != nil {
		m.fail(job, err)
		return
	}
	m.finish(job, false)
}

// onCell is sweep.Run's Progress hook: checkpoint first, then count
// and announce — an event must never report a cell the disk does not
// yet hold. Checkpoint write errors are tolerated (the result is
// still in memory and the final cache write will surface a sick
// disk); only the resume-after-crash guarantee degrades.
func (m *manager) onCell(job *Job, total int, r sweep.CellResult) {
	m.st.writeCheckpoint(job.SpecHash, r) //nolint:errcheck // see above
	m.mu.Lock()
	job.CellsDone++
	done := job.CellsDone
	m.mu.Unlock()
	e := Event{Type: "cell", Job: job.ID, Cell: r.Cell.Name(), Index: r.Cell.Index, Done: done, Total: total}
	if r.Err != nil {
		e.Err = r.Err.Error()
	}
	m.bc.emit(e)
	if m.cellHook != nil {
		m.cellHook(job.ID, r.Cell.Index, done)
	}
}

func (m *manager) finish(job *Job, cached bool) {
	m.mu.Lock()
	job.State = StateDone
	job.Cached = cached
	job.CellsDone = job.Cells
	job.Error = ""
	total := job.Cells
	err := m.persistLocked(job)
	m.mu.Unlock()
	if err != nil {
		m.fail(job, err)
		return
	}
	m.bc.emit(Event{Type: "done", Job: job.ID, Done: total, Total: total, Cached: cached})
	m.st.clearCheckpoints(job.SpecHash)
}

func (m *manager) fail(job *Job, ferr error) {
	m.mu.Lock()
	job.State = StateFailed
	job.Error = ferr.Error()
	m.persistLocked(job) //nolint:errcheck // best-effort: the disk may be the failure
	done, total := job.CellsDone, job.Cells
	m.mu.Unlock()
	m.bc.emit(Event{Type: "failed", Job: job.ID, Done: done, Total: total, Err: ferr.Error()})
}

// persistLocked fsyncs a job record; callers hold m.mu (or own the
// job exclusively, as newManager does).
func (m *manager) persistLocked(j *Job) error {
	b, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return writeFileSync(m.st.jobPath(j.ID), append(b, '\n'))
}
