// Fixture for the maporder analyzer: positive findings.
package maporder

import (
	"fmt"
	"io"
	"strings"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map m`
	}
	return keys // no sort before the slice escapes: order is random
}

func badWriter(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map m emits in randomised iteration order`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside range over map m emits in randomised iteration order`
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	name := ""
	for k := range m {
		name += k // want `string concatenation onto name inside range over map m`
	}
	return name
}

type row struct{ k, v string }

// Named map types are still maps.
type index map[string]string

func badNamedMap(idx index) []row {
	var rows []row
	for k, v := range idx {
		rows = append(rows, row{k, v}) // want `append to rows inside range over map idx`
	}
	return rows
}
