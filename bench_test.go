package hybridcluster

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured). Each benchmark runs the full
// scenario per iteration and reports the experiment's headline numbers
// through b.ReportMetric, so `go test -bench=. -benchmem` reproduces
// the whole evaluation. cmd/benchtab prints the same experiments as
// full text tables.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bootmgr"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/deploy"
	"repro/internal/detector"
	"repro/internal/grubcfg"
	"repro/internal/hardware"
	"repro/internal/oscar"
	"repro/internal/osid"
	"repro/internal/pbs"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// BenchmarkE1_TableI_Placement schedules one job per Table-I
// application on the hybrid and verifies every application lands on
// (and completes in) an operating system it supports.
func BenchmarkE1_TableI_Placement(b *testing.B) {
	var completed int
	for i := 0; i < b.N; i++ {
		var trace workload.Trace
		at := time.Duration(0)
		for _, app := range workload.Catalog {
			os := osid.Linux
			if app.Platform == workload.WindowsOnly {
				os = osid.Windows
			}
			trace = append(trace, workload.Job{
				At: at, App: app.Name, OS: os, Owner: "bench",
				Nodes: 1, PPN: app.TypicalPPN, Runtime: 30 * time.Minute,
			})
			at += time.Minute
		}
		res, err := Run(Scenario{
			Name:    "table1",
			Cluster: ClusterConfig{Mode: HybridV2, Cycle: 5 * time.Minute},
			Trace:   trace,
		})
		if err != nil {
			b.Fatal(err)
		}
		completed = res.Summary.JobsCompleted[osid.Linux] + res.Summary.JobsCompleted[osid.Windows]
		if completed != len(workload.Catalog) {
			b.Fatalf("completed %d of %d catalog apps", completed, len(workload.Catalog))
		}
	}
	b.ReportMetric(float64(completed), "apps-placed")
}

// BenchmarkE2_GrubRoundTrip parses and re-renders the paper's Figure-2
// and Figure-3 GRUB artifacts and flips the default OS, the core v1
// control operation.
func BenchmarkE2_GrubRoundTrip(b *testing.B) {
	ctl, err := grubcfg.ControlMenu(grubcfg.DefaultLinuxEntry(), grubcfg.DefaultWindowsEntry(), osid.Linux)
	if err != nil {
		b.Fatal(err)
	}
	src := ctl.Render()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := grubcfg.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := cfg.SetDefaultOS(osid.Windows); err != nil {
			b.Fatal(err)
		}
		out := cfg.Render()
		if len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkE3_SwitchJob runs the Figure-4 OS-switch batch job on a
// fresh cluster: full-node booking, control-file flip, reboot, and
// reports the end-to-end switch latency.
func BenchmarkE3_SwitchJob(b *testing.B) {
	var switchSec float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{Mode: cluster.HybridV1, Nodes: 4, InitialLinux: 4})
		if err != nil {
			b.Fatal(err)
		}
		script := c.SwitchJobScript(osid.Windows)
		if _, err := pbs.ParseScript(script); err != nil {
			b.Fatal(err)
		}
		if n := c.OrderSwitch(osid.Linux, osid.Windows, 1); n != 1 {
			b.Fatalf("submitted %d", n)
		}
		c.Eng.RunFor(time.Hour)
		sw := c.Rec.Switches()
		if len(sw) != 1 || !sw[0].OK {
			b.Fatalf("switch records = %+v", sw)
		}
		switchSec = sw[0].Duration().Seconds()
	}
	b.ReportMetric(switchSec, "switch-sec")
}

// BenchmarkE4_DetectorWire drives PBS into the three Figure-6 states
// and encodes/parses the Figure-5 wire format.
func BenchmarkE4_DetectorWire(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simtime.NewEngine()
		s := pbs.NewServer(eng, "eridani.qgg.hud.ac.uk")
		s.AddNode("enode01", 4, true)
		det := detector.NewPBSDetector(s)

		rep, err := det.Detect() // other state
		if err != nil || rep.Encode() != "00000none" {
			b.Fatalf("other: %q %v", rep.Encode(), err)
		}
		s.Qsub(pbs.SubmitRequest{Name: "sleep", Nodes: 1, PPN: 4, Runtime: time.Hour})
		eng.RunUntil(time.Second)
		rep, _ = det.Detect() // running
		if rep.Stuck {
			b.Fatal("running misreported")
		}
		// The node reboots into Windows: the queue wedges with a
		// feasible job waiting and nothing running.
		s.Qdel("1.eridani.qgg.hud.ac.uk")
		s.SetNodeAvailable("enode01", false)
		s.Qsub(pbs.SubmitRequest{Name: "big", Nodes: 1, PPN: 4, Runtime: time.Hour})
		eng.RunUntil(2 * time.Second)
		rep, _ = det.Detect() // stuck
		if !rep.Stuck || rep.NeededCPUs != 4 {
			b.Fatalf("stuck rep = %+v", rep)
		}
		back, err := detector.Parse(rep.Encode())
		if err != nil || back != rep {
			b.Fatalf("round trip: %+v vs %+v", back, rep)
		}
	}
}

// BenchmarkE5_PBSTextRoundTrip renders and scrapes qstat -f and
// pbsnodes for a loaded 16-node cluster (Figures 7–8).
func BenchmarkE5_PBSTextRoundTrip(b *testing.B) {
	eng := simtime.NewEngine()
	s := pbs.NewServer(eng, "eridani.qgg.hud.ac.uk")
	for i := 1; i <= 16; i++ {
		s.AddNode(fmt.Sprintf("enode%02d", i), 4, true)
	}
	for i := 0; i < 24; i++ {
		s.Qsub(pbs.SubmitRequest{Name: fmt.Sprintf("job%d", i), Nodes: 1, PPN: 4, Runtime: time.Hour})
	}
	eng.RunUntil(time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs, err := pbs.ParseQstatF(s.QstatF())
		if err != nil || len(jobs) != 24 {
			b.Fatalf("jobs = %d, %v", len(jobs), err)
		}
		nodes, err := pbs.ParsePBSNodes(s.PBSNodes())
		if err != nil || len(nodes) != 16 {
			b.Fatalf("nodes = %d, %v", len(nodes), err)
		}
	}
}

// BenchmarkE6_Diskpart reimages Windows with the v1 (Figure 10,
// clean-based) and v2 (Figure 15, partition-1-only) scripts and
// reports how many Linux partitions each destroys.
func BenchmarkE6_Diskpart(b *testing.B) {
	run := func(b *testing.B, script string) float64 {
		var lost float64
		for i := 0; i < b.N; i++ {
			n := hardware.NewNode(hardware.NodeSpec{Index: 1})
			dp, _ := deploy.ParseDiskpart(deploy.V1Diskpart)
			if _, err := deploy.DeployWindows(n, dp); err != nil {
				b.Fatal(err)
			}
			layout, _ := deploy.ParseIdeDisk(deploy.V1IdeDisk)
			img, err := oscar.BuildImage("img", oscar.V1, layout)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := oscar.DeployNode(n, img); err != nil {
				b.Fatal(err)
			}
			re, _ := deploy.ParseDiskpart(script)
			rep, err := deploy.DeployWindows(n, re)
			if err != nil {
				b.Fatal(err)
			}
			lost = float64(rep.LinuxPartitionsLost)
		}
		return lost
	}
	b.Run("v1-clean", func(b *testing.B) {
		lost := run(b, deploy.V1Diskpart)
		if lost == 0 {
			b.Fatal("v1 reimage lost nothing?")
		}
		b.ReportMetric(lost, "linux-parts-lost")
	})
	b.Run("v2-partition1", func(b *testing.B) {
		lost := run(b, deploy.V2ReimageDiskpart)
		if lost != 0 {
			b.Fatalf("v2 reimage lost %v linux partitions", lost)
		}
		b.ReportMetric(lost, "linux-parts-lost")
	})
}

// BenchmarkE7_IdeDisk builds the OSCAR image from the Figure-14 layout
// and deploys it twice over a Windows install, verifying the skip
// label preserves the Windows partition.
func BenchmarkE7_IdeDisk(b *testing.B) {
	var preserved float64
	for i := 0; i < b.N; i++ {
		layout, err := deploy.ParseIdeDisk(deploy.V2IdeDisk)
		if err != nil {
			b.Fatal(err)
		}
		img, err := oscar.BuildImage("oscarimage", oscar.V2, layout)
		if err != nil {
			b.Fatal(err)
		}
		n := hardware.NewNode(hardware.NodeSpec{Index: 1})
		dp, _ := deploy.ParseDiskpart(deploy.V2InitialDiskpart)
		if _, err := deploy.DeployWindows(n, dp); err != nil {
			b.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			rep, err := oscar.DeployNode(n, img)
			if err != nil {
				b.Fatal(err)
			}
			if rep.WindowsLost {
				b.Fatal("skip label failed")
			}
			preserved = float64(rep.PartitionsPreserved)
		}
	}
	b.ReportMetric(preserved, "parts-preserved")
}

// BenchmarkE8_ControlLoop pushes the same stuck-queue scenario through
// v1 and v2 and reports control actions per switched node: v1 needs
// one FAT edit per node, v2 one flag set per direction change
// (Figures 1 and 11–13).
func BenchmarkE8_ControlLoop(b *testing.B) {
	run := func(b *testing.B, mode cluster.Mode) (actions, switches float64) {
		for i := 0; i < b.N; i++ {
			// One wide Windows job on an all-Linux cluster: the stuck
			// queue forces a batch of node switches in one decision.
			res, err := Run(Scenario{
				Name:    mode.String(),
				Cluster: ClusterConfig{Mode: mode, InitialLinux: 16, Cycle: 5 * time.Minute},
				Trace: BurstTrace(BurstConfig{Start: 0, Jobs: 1, Gap: time.Minute,
					App: "ANSYS FLUENT", OS: osid.Windows, Nodes: 4, PPN: 4,
					Runtime: time.Hour, Owner: "cfd"}),
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Summary.JobsCompleted[osid.Windows] != 1 {
				b.Fatalf("%s completed %v", mode, res.Summary.JobsCompleted)
			}
			actions = float64(res.ControlActions)
			switches = float64(res.Summary.Switches)
		}
		return actions, switches
	}
	b.Run("v1", func(b *testing.B) {
		actions, switches := run(b, cluster.HybridV1)
		b.ReportMetric(actions, "control-actions")
		b.ReportMetric(switches, "switches")
		if actions < switches {
			b.Fatalf("v1 should pay one action per switch: %v < %v", actions, switches)
		}
	})
	b.Run("v2", func(b *testing.B) {
		actions, switches := run(b, cluster.HybridV2)
		b.ReportMetric(actions, "control-actions")
		b.ReportMetric(switches, "switches")
		if actions >= switches {
			b.Fatalf("v2 flag should amortise: %v >= %v", actions, switches)
		}
	})
}

// BenchmarkE9_SwitchLatency measures the OS-switch latency
// distribution over repeated forced switches and checks the paper's
// "no more than five minutes" bound.
func BenchmarkE9_SwitchLatency(b *testing.B) {
	var mean, max float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{Mode: cluster.HybridV2, Nodes: 16, InitialLinux: 16, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		target := osid.Windows
		for round := 0; round < 6; round++ {
			for n := 1; n <= 16; n++ {
				_ = c.ForceSwitch(fmt.Sprintf("enode%02d", n), target)
			}
			c.Eng.RunFor(time.Hour)
			target = target.Other()
		}
		var sum time.Duration
		var worst time.Duration
		switches := c.Rec.Switches()
		for _, sw := range switches {
			if !sw.OK {
				b.Fatalf("failed switch: %+v", sw)
			}
			sum += sw.Duration()
			if sw.Duration() > worst {
				worst = sw.Duration()
			}
		}
		if len(switches) == 0 {
			b.Fatal("no switches recorded")
		}
		mean = (sum / time.Duration(len(switches))).Seconds()
		max = worst.Seconds()
		if worst > 5*time.Minute {
			b.Fatalf("switch took %v > 5m", worst)
		}
	}
	b.ReportMetric(mean, "mean-sec")
	b.ReportMetric(max, "max-sec")
}

// alternatingTrace builds the demand pattern that separates bi-stable
// from mono-stable: Windows bursts recurring between Linux work.
func alternatingTrace(seed int64) workload.Trace {
	lin := workload.Poisson(workload.PoissonConfig{
		Seed: seed, Duration: 24 * time.Hour, JobsPerHour: 2, WindowsFrac: 0, MaxNodes: 4,
	})
	var bursts workload.Trace
	for i := 0; i < 4; i++ {
		bursts = append(bursts, workload.Burst(workload.BurstConfig{
			Start: time.Duration(i*6) * time.Hour, Jobs: 4, Gap: 2 * time.Minute,
			App: "Backburner", OS: osid.Windows, Nodes: 2, PPN: 4,
			Runtime: 45 * time.Minute, Owner: "render",
		})...)
	}
	return workload.Merge(lin, bursts)
}

// BenchmarkE10_BiVsMonoStable compares the bi-stable hybrid against
// the mono-stable one-scheduler baseline (§III-C, ref [5]) on
// recurring Windows bursts. Bi-stable keeps a warm Windows pool, so it
// reboots less and serves Windows work faster.
func BenchmarkE10_BiVsMonoStable(b *testing.B) {
	run := func(b *testing.B, mode cluster.Mode) (waitW, switches float64) {
		for i := 0; i < b.N; i++ {
			res, err := Run(Scenario{
				Name:    mode.String(),
				Cluster: ClusterConfig{Mode: mode, InitialLinux: 16, Cycle: 5 * time.Minute},
				Trace:   alternatingTrace(42),
				Horizon: 72 * time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Summary.JobsCompleted[osid.Windows] != 16 {
				b.Fatalf("%s: windows completed %v", mode, res.Summary.JobsCompleted)
			}
			waitW = res.Summary.MeanWait[osid.Windows].Seconds()
			switches = float64(res.Summary.Switches)
		}
		return waitW, switches
	}
	var biWait, biSw, monoWait, monoSw float64
	b.Run("bi-stable", func(b *testing.B) {
		biWait, biSw = run(b, cluster.HybridV2)
		b.ReportMetric(biWait, "winwait-sec")
		b.ReportMetric(biSw, "switches")
	})
	b.Run("mono-stable", func(b *testing.B) {
		monoWait, monoSw = run(b, cluster.MonoStable)
		b.ReportMetric(monoWait, "winwait-sec")
		b.ReportMetric(monoSw, "switches")
	})
	if biWait > 0 && monoWait > 0 {
		if monoSw <= biSw {
			b.Fatalf("mono-stable should reboot more: %v <= %v", monoSw, biSw)
		}
		if monoWait < biWait {
			b.Fatalf("bi-stable should serve Windows bursts no slower: bi=%v mono=%v", biWait, monoWait)
		}
	}
}

// BenchmarkE11_MatlabGACase reproduces the Eridani case study: Linux
// MD background plus a Windows MATLAB-MDCS GA burst; nodes must shift
// to Windows and the system "seamlessly adjust".
func BenchmarkE11_MatlabGACase(b *testing.B) {
	var peakWin, finalLin float64
	for i := 0; i < b.N; i++ {
		res, err := Run(Scenario{
			Name:           "matlab-ga",
			Cluster:        ClusterConfig{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute},
			Trace:          MatlabGATrace(7),
			Horizon:        48 * time.Hour,
			SampleInterval: 15 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.JobsCompleted[osid.Windows] != 10 {
			b.Fatalf("GA jobs completed = %v", res.Summary.JobsCompleted)
		}
		peak := 0
		for _, s := range res.Series {
			if s.WindowsNodes > peak {
				peak = s.WindowsNodes
			}
		}
		if peak == 0 {
			b.Fatal("nodes never shifted to Windows")
		}
		peakWin = float64(peak)
		finalLin = float64(res.Series[len(res.Series)-1].LinuxNodes)
	}
	b.ReportMetric(peakWin, "peak-win-nodes")
	b.ReportMetric(finalLin, "final-linux-nodes")
}

// BenchmarkE12_MixSweep sweeps the Windows share of a phased workload
// whose wide jobs exceed a static half-cluster (the "duplication and
// poor utilisation" scenario of §I) and compares hybrid vs static
// utilisation and completions. The hybrid completes everything; the
// static split strands every wide job.
func BenchmarkE12_MixSweep(b *testing.B) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		frac := frac
		b.Run(fmt.Sprintf("win%.0f%%", frac*100), func(b *testing.B) {
			var hybridUtil, staticUtil, hybridDone, staticDone float64
			for i := 0; i < b.N; i++ {
				trace := workload.PhasedWideMix(workload.PhasedConfig{
					Seed: 99, Phases: 8, WindowsFrac: frac,
				})
				results, err := CompareModes(
					[]ClusterMode{cluster.HybridV2, cluster.Static},
					ClusterConfig{InitialLinux: 8, Cycle: 5 * time.Minute},
					trace, 96*time.Hour)
				if err != nil {
					b.Fatal(err)
				}
				hybridUtil = results[0].Summary.Utilisation
				staticUtil = results[1].Summary.Utilisation
				hybridDone = float64(completedAll(results[0]))
				staticDone = float64(completedAll(results[1]))
			}
			if hybridUtil < staticUtil {
				b.Fatalf("hybrid util %.3f < static %.3f", hybridUtil, staticUtil)
			}
			if hybridDone < staticDone {
				b.Fatalf("hybrid completed %v < static %v", hybridDone, staticDone)
			}
			b.ReportMetric(hybridUtil*100, "hybrid-util-pct")
			b.ReportMetric(staticUtil*100, "static-util-pct")
			b.ReportMetric(hybridDone, "hybrid-done")
			b.ReportMetric(staticDone, "static-done")
		})
	}
}

func completedAll(r Result) int {
	return r.Summary.JobsCompleted[osid.Linux] + r.Summary.JobsCompleted[osid.Windows]
}

// BenchmarkA1_CycleInterval ablates the detector cycle (the paper used
// 5–10 minutes): shorter cycles cut Windows queue wait at the price of
// more control traffic.
func BenchmarkA1_CycleInterval(b *testing.B) {
	for _, cycle := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute} {
		cycle := cycle
		b.Run(cycle.String(), func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := Run(Scenario{
					Name:    "cycle",
					Cluster: ClusterConfig{Mode: HybridV2, InitialLinux: 16, Cycle: cycle},
					Trace: BurstTrace(BurstConfig{Start: 0, Jobs: 3, Gap: time.Minute,
						App: "Opera", OS: osid.Windows, Nodes: 1, PPN: 4,
						Runtime: time.Hour, Owner: "u"}),
					Horizon: 72 * time.Hour,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Summary.JobsCompleted[osid.Windows] != 3 {
					b.Fatalf("completed %v", res.Summary.JobsCompleted)
				}
				wait = res.Summary.MeanWait[osid.Windows].Seconds()
			}
			b.ReportMetric(wait, "winwait-sec")
		})
	}
}

// BenchmarkA2_Policies ablates the decision rule (§V future work):
// paper FCFS vs threshold, hysteresis and fair-share.
func BenchmarkA2_Policies(b *testing.B) {
	// Policies carry state, so every iteration builds its policy fresh
	// through the registry — the same constructors every CLI flag and
	// sweep axis resolves.
	for _, f := range controller.Factories() {
		name, make := f.Name, f.New
		b.Run(name, func(b *testing.B) {
			var util, switches float64
			for i := 0; i < b.N; i++ {
				p := make()
				// All nodes start on Linux so Windows bursts wedge the
				// queue and the policies differentiate.
				res, err := Run(Scenario{
					Name:    p.Name(),
					Cluster: ClusterConfig{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute, Policy: p},
					Trace:   alternatingTrace(11),
					Horizon: 72 * time.Hour,
				})
				if err != nil {
					b.Fatal(err)
				}
				util = res.Summary.Utilisation
				switches = float64(res.Summary.Switches)
			}
			b.ReportMetric(util*100, "util-pct")
			b.ReportMetric(switches, "switches")
		})
	}
}

// BenchmarkA3_SwitchCost scales the reboot cost (the multi-boot
// solution's one "con" in §II) and watches the hybrid's utilisation
// advantage over a static split shrink as switching approaches job
// lengths, while the switch-time overhead grows.
func BenchmarkA3_SwitchCost(b *testing.B) {
	for _, scale := range []float64{0.5, 1, 4, 12} {
		scale := scale
		b.Run(fmt.Sprintf("boot-x%.1f", scale), func(b *testing.B) {
			var utilGap, overhead, meanSwitch float64
			for i := 0; i < b.N; i++ {
				lat := bootmgr.DefaultLatencyModel()
				lat.KernelLinux = time.Duration(float64(lat.KernelLinux) * scale)
				lat.KernelWindows = time.Duration(float64(lat.KernelWindows) * scale)
				lat.ServicesLinux = time.Duration(float64(lat.ServicesLinux) * scale)
				lat.ServicesWindows = time.Duration(float64(lat.ServicesWindows) * scale)
				lat.Shutdown = time.Duration(float64(lat.Shutdown) * scale)
				trace := workload.PhasedWideMix(workload.PhasedConfig{
					Seed: 5, Phases: 8, WindowsFrac: 0.5,
				})
				base := ClusterConfig{InitialLinux: 8, Cycle: 5 * time.Minute, Latency: &lat}
				results, err := CompareModes([]ClusterMode{cluster.HybridV2, cluster.Static}, base, trace, 200*time.Hour)
				if err != nil {
					b.Fatal(err)
				}
				utilGap = (results[0].Summary.Utilisation - results[1].Summary.Utilisation) * 100
				overhead = results[0].Summary.SwitchOverhead * 100
				meanSwitch = results[0].Summary.MeanSwitch.Seconds()
			}
			b.ReportMetric(utilGap, "util-gap-pct")
			b.ReportMetric(overhead, "switch-overhead-pct")
			b.ReportMetric(meanSwitch, "mean-switch-sec")
		})
	}
}
