package controller

import "time"

// DefaultDwell is the hysteresis rule's default minimum dwell time and
// the window the thrash metric judges reversals against: a node moved
// and moved back faster than this paid two reboots for demand that did
// not outlive one dwell period.
const DefaultDwell = 30 * time.Minute

// ThrashCount counts the switch decisions a history later reversed
// within one window: an acting record whose direction (donor → target)
// is the exact opposite of the previous acting record's, arriving
// strictly before one window has elapsed — the mirror of the dwell
// rule, which blocks every action before t+MinDwell. A policy that
// honours the dwell is therefore thrash-free by construction. Each
// reversal counts once, against the later decision — a 4-hour
// ping-pong at a 30-minute period scores one thrash per about-face,
// which is what the E15 ranking charges a policy for.
func ThrashCount(history []DecisionRecord, window time.Duration) int {
	if window <= 0 {
		window = DefaultDwell
	}
	thrash := 0
	have := false
	var prev DecisionRecord
	for _, rec := range history {
		if !rec.Decision.Act {
			continue
		}
		if have &&
			rec.Decision.Donor == prev.Decision.Target &&
			rec.Decision.Target == prev.Decision.Donor &&
			rec.At-prev.At < window {
			thrash++
		}
		prev, have = rec, true
	}
	return thrash
}

// Thrash reports the manager's reversal count over the default dwell
// window — the headline anti-flap number the experiments record.
func (m *Manager) Thrash() int {
	return ThrashCount(m.history, DefaultDwell)
}
