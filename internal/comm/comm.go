// Package comm implements the head-node communicators of
// dualboot-oscar: the Windows head sends its queue state to the Linux
// head over a TCP socket on a fixed cycle, and reboot orders flow back
// (paper §IV-A3, Figure 11). The protocol is line-based text carrying
// the Figure-5 detector wire format.
//
// Two transports share the same message codec:
//
//   - Bus: an in-memory transport driven by the simulation clock, used
//     by all experiments (deterministic, optional link latency);
//   - TCP (tcp.go): a real net-based transport used by cmd/dualbootd
//     and the live-wire integration test.
package comm

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/detector"
	"repro/internal/osid"
	"repro/internal/simtime"
)

// Kind enumerates the protocol messages.
type Kind uint8

const (
	// KindState carries a detector report ("queue state").
	KindState Kind = iota
	// KindReboot orders the receiving head to submit reboot batch jobs
	// for Count nodes, booting them into Target.
	KindReboot
	// KindAck acknowledges receipt.
	KindAck
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindState:
		return "STATE"
	case KindReboot:
		return "REBOOT"
	case KindAck:
		return "ACK"
	default:
		return "UNKNOWN"
	}
}

// Message is one protocol datagram.
type Message struct {
	Kind   Kind
	From   osid.OS         // sending head node's side
	Report detector.Report // KindState payload
	Target osid.OS         // KindReboot: OS to boot into
	Count  int             // KindReboot: node count
}

// Encode renders the wire line (without trailing newline).
func (m Message) Encode() string {
	switch m.Kind {
	case KindState:
		return fmt.Sprintf("STATE %s %s", m.From, m.Report.Encode())
	case KindReboot:
		return fmt.Sprintf("REBOOT %s %s %d", m.From, m.Target, m.Count)
	case KindAck:
		return "ACK"
	default:
		return "UNKNOWN"
	}
}

// ParseLine decodes a wire line.
func ParseLine(line string) (Message, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return Message{}, fmt.Errorf("comm: empty message")
	}
	switch fields[0] {
	case "STATE":
		if len(fields) != 3 {
			return Message{}, fmt.Errorf("comm: STATE wants 2 args, got %d", len(fields)-1)
		}
		from, err := osid.Parse(fields[1])
		if err != nil || !from.Valid() {
			return Message{}, fmt.Errorf("comm: STATE: bad side %q", fields[1])
		}
		rep, err := detector.Parse(fields[2])
		if err != nil {
			return Message{}, fmt.Errorf("comm: STATE: %w", err)
		}
		return Message{Kind: KindState, From: from, Report: rep}, nil
	case "REBOOT":
		if len(fields) != 4 {
			return Message{}, fmt.Errorf("comm: REBOOT wants 3 args, got %d", len(fields)-1)
		}
		from, err := osid.Parse(fields[1])
		if err != nil || !from.Valid() {
			return Message{}, fmt.Errorf("comm: REBOOT: bad side %q", fields[1])
		}
		target, err := osid.Parse(fields[2])
		if err != nil || !target.Valid() {
			return Message{}, fmt.Errorf("comm: REBOOT: bad target %q", fields[2])
		}
		count, err := strconv.Atoi(fields[3])
		if err != nil || count <= 0 {
			return Message{}, fmt.Errorf("comm: REBOOT: bad count %q", fields[3])
		}
		return Message{Kind: KindReboot, From: from, Target: target, Count: count}, nil
	case "ACK":
		return Message{Kind: KindAck}, nil
	default:
		return Message{}, fmt.Errorf("comm: unknown verb %q", fields[0])
	}
}

// Handler receives delivered messages; from is the sender's endpoint
// name.
type Handler func(from string, m Message)

// Stats counts bus traffic.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int // sends to unregistered endpoints
	ByKind    map[Kind]int
}

// Bus is the simulation transport: named endpoints, deliveries
// scheduled on the engine after a configurable link latency. A
// head-node LAN hop in the paper's cluster is sub-millisecond; the
// default matches that but experiments can inflate it.
type Bus struct {
	eng      *simtime.Engine
	latency  time.Duration
	handlers map[string]Handler
	stats    Stats
}

// NewBus creates an in-memory transport on the engine.
func NewBus(eng *simtime.Engine, latency time.Duration) *Bus {
	if latency < 0 {
		latency = 0
	}
	return &Bus{
		eng:      eng,
		latency:  latency,
		handlers: make(map[string]Handler),
		stats:    Stats{ByKind: make(map[Kind]int)},
	}
}

// Register attaches an endpoint; a second registration with the same
// name replaces the handler (a daemon restart).
func (b *Bus) Register(name string, h Handler) {
	if h == nil {
		delete(b.handlers, name)
		return
	}
	b.handlers[name] = h
}

// Send encodes and delivers m to the named endpoint after the link
// latency. Sends to unknown endpoints are counted and dropped — the
// paper's daemons tolerate the peer being down and retry on the next
// cycle.
func (b *Bus) Send(from, to string, m Message) {
	b.stats.Sent++
	b.stats.ByKind[m.Kind]++
	line := m.Encode()
	b.eng.After(b.latency, func() {
		h, ok := b.handlers[to]
		if !ok {
			b.stats.Dropped++
			return
		}
		// Round-trip through the codec so both transports exercise the
		// identical wire format.
		parsed, err := ParseLine(line)
		if err != nil {
			b.stats.Dropped++
			return
		}
		b.stats.Delivered++
		h(from, parsed)
	})
}

// Stats returns a copy of the traffic counters.
func (b *Bus) Stats() Stats {
	out := b.stats
	out.ByKind = make(map[Kind]int, len(b.stats.ByKind))
	for k, v := range b.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}
