// Package controller implements the decision-making heart of
// dualboot-oscar: the daemon programs on the two head nodes that
// exchange queue states on a fixed cycle and decide when to reboot
// idle compute nodes into the other operating system (paper §III-B3,
// §IV-A, Figure 11).
//
// The paper's deployed rule is first-come first-served over stuck
// queues; §V notes that "this could be improved to adapt the rules
// from diverse administration requirements", so alongside the paper's
// policy this package ships the threshold, hysteresis and fair-share
// extensions exercised by the ablation benchmarks.
package controller

import (
	"fmt"
	"time"

	"repro/internal/detector"
	"repro/internal/osid"
)

// SideState is everything the controller knows about one side of the
// hybrid when deciding.
type SideState struct {
	OS     osid.OS
	Report detector.Report

	// Node accounting, maintained by the cluster:
	TotalNodes   int // nodes booted into (or booting toward) this OS
	IdleNodes    int // up with no busy CPUs
	PendingAway  int // switch/reboot orders outstanding against this side
	CoresPerNode int

	// Richer demand info for the extension policies (the paper's
	// detectors expose only the head of the queue; these come from the
	// same scheduler interfaces).
	RunningJobs int
	QueuedJobs  int
	QueuedCPUs  int
}

// DonatableNodes is how many nodes this side could give away right now
// without touching running work.
func (s SideState) DonatableNodes() int {
	n := s.IdleNodes - s.PendingAway
	if n < 0 {
		return 0
	}
	return n
}

// nodesFor converts a CPU demand into node count on this side's
// hardware.
func (s SideState) nodesFor(cpus int) int {
	cpn := s.CoresPerNode
	if cpn <= 0 {
		cpn = 4
	}
	n := (cpus + cpn - 1) / cpn
	if n < 1 {
		n = 1
	}
	return n
}

// Decision is a controller verdict for one cycle.
type Decision struct {
	Act    bool
	Target osid.OS // side that gains nodes
	Donor  osid.OS // side that loses nodes
	Nodes  int
	Reason string
}

// String renders the decision for logs.
func (d Decision) String() string {
	if !d.Act {
		return "no-switch: " + d.Reason
	}
	return fmt.Sprintf("switch %d node(s) %s->%s: %s", d.Nodes, d.Donor, d.Target, d.Reason)
}

// Policy decides whether to move nodes given both sides' states.
type Policy interface {
	Name() string
	Decide(now time.Duration, linux, windows SideState) Decision
}

// FCFS is the paper's deployed policy: if exactly one scheduler is
// stuck and the other side has idle nodes, move enough nodes to run
// the stuck job. When both are stuck, the Windows request wins the tie
// because the control cycle begins with the Windows queue state
// arriving at the Linux decision maker (Figure 11 steps 1–3).
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Decide implements Policy.
func (FCFS) Decide(now time.Duration, linux, windows SideState) Decision {
	order := [2]struct{ want, donor SideState }{
		{windows, linux}, // Windows report arrives first in the cycle
		{linux, windows},
	}
	for _, pair := range order {
		if !pair.want.Report.Stuck {
			continue
		}
		avail := pair.donor.DonatableNodes()
		if avail == 0 {
			continue
		}
		need := pair.donor.nodesFor(pair.want.Report.NeededCPUs)
		n := min(need, avail)
		return Decision{
			Act:    true,
			Target: pair.want.OS,
			Donor:  pair.donor.OS,
			Nodes:  n,
			Reason: fmt.Sprintf("%s stuck on job %s needing %d CPUs", pair.want.OS, pair.want.Report.StuckJobID, pair.want.Report.NeededCPUs),
		}
	}
	return Decision{Reason: "no stuck queue with donatable nodes"}
}

// Threshold is FCFS plus guard rails: the donor keeps at least Reserve
// nodes, and a switch only happens when at least MinQueued jobs wait.
// This is the "don't thrash on a single small job" rule administrators
// asked for.
type Threshold struct {
	Reserve   int // nodes the donor side always keeps
	MinQueued int // minimum queued jobs on the stuck side
}

// Name implements Policy.
func (p Threshold) Name() string { return "threshold" }

// Decide implements Policy.
func (p Threshold) Decide(now time.Duration, linux, windows SideState) Decision {
	base := FCFS{}.Decide(now, linux, windows)
	if !base.Act {
		return base
	}
	want, donor := linux, windows
	if base.Target == osid.Windows {
		want, donor = windows, linux
	}
	if want.QueuedJobs < p.MinQueued {
		return Decision{Reason: fmt.Sprintf("only %d queued on %s (< %d)", want.QueuedJobs, want.OS, p.MinQueued)}
	}
	afterDonor := donor.TotalNodes - base.Nodes
	if afterDonor < p.Reserve {
		n := donor.TotalNodes - p.Reserve
		if n <= 0 {
			return Decision{Reason: fmt.Sprintf("%s at reserve floor (%d nodes)", donor.OS, p.Reserve)}
		}
		if n > base.Nodes {
			n = base.Nodes
		}
		base.Nodes = n
		base.Reason += fmt.Sprintf(" (capped by reserve %d)", p.Reserve)
	}
	return base
}

// Hysteresis wraps another policy and enforces a cooldown between
// switches, preventing the reboot ping-pong the paper's five-minute
// boot cost makes expensive.
type Hysteresis struct {
	Inner    Policy
	Cooldown time.Duration

	lastSwitch time.Duration
	switched   bool
}

// Name implements Policy.
func (p *Hysteresis) Name() string { return "hysteresis(" + p.Inner.Name() + ")" }

// Decide implements Policy.
func (p *Hysteresis) Decide(now time.Duration, linux, windows SideState) Decision {
	d := p.Inner.Decide(now, linux, windows)
	if !d.Act {
		return d
	}
	if p.switched && now-p.lastSwitch < p.Cooldown {
		return Decision{Reason: fmt.Sprintf("cooldown: %v since last switch < %v", now-p.lastSwitch, p.Cooldown)}
	}
	p.lastSwitch = now
	p.switched = true
	return d
}

// FairShare targets a node split proportional to total queued CPU
// demand on each side, rather than reacting only to fully stuck
// queues. It moves at most MaxStep nodes per cycle.
type FairShare struct {
	MaxStep int // per-cycle cap, default 2
}

// Name implements Policy.
func (p FairShare) Name() string { return "fairshare" }

// Decide implements Policy.
func (p FairShare) Decide(now time.Duration, linux, windows SideState) Decision {
	step := p.MaxStep
	if step <= 0 {
		step = 2
	}
	demandL := linux.QueuedCPUs + linux.RunningJobs // running jobs hold their side
	demandW := windows.QueuedCPUs + windows.RunningJobs
	total := linux.TotalNodes + windows.TotalNodes
	if total == 0 || demandL+demandW == 0 {
		return Decision{Reason: "no demand"}
	}
	wantL := total * demandL / (demandL + demandW)
	// Keep at least one node on a side that has any demand at all.
	if demandL > 0 && wantL == 0 {
		wantL = 1
	}
	if demandW > 0 && wantL == total {
		wantL = total - 1
	}
	delta := wantL - linux.TotalNodes
	switch {
	case delta > 0:
		n := min(min(delta, step), windows.DonatableNodes())
		if n <= 0 {
			return Decision{Reason: "windows has nothing to donate"}
		}
		return Decision{Act: true, Target: osid.Linux, Donor: osid.Windows, Nodes: n,
			Reason: fmt.Sprintf("fair split wants %d linux nodes, have %d", wantL, linux.TotalNodes)}
	case delta < 0:
		n := min(min(-delta, step), linux.DonatableNodes())
		if n <= 0 {
			return Decision{Reason: "linux has nothing to donate"}
		}
		return Decision{Act: true, Target: osid.Windows, Donor: osid.Linux, Nodes: n,
			Reason: fmt.Sprintf("fair split wants %d linux nodes, have %d", wantL, linux.TotalNodes)}
	default:
		return Decision{Reason: "split already fair"}
	}
}
