package service

import (
	"fmt"
	"os"
	"path/filepath"
)

// store is the service's filesystem state layout:
//
//	<root>/jobs/<id>.json              one record per job, atomically replaced
//	<root>/specs/<hash>.json           canonical spec bytes, content-addressed
//	<root>/checkpoints/<hash>/cell-<index>.json   per-cell results of in-flight jobs
//	<root>/cache/<hash>.csv|.json      finished sweep results, content-addressed
//
// Every write goes through writeFileSync: data lands in a temp file
// in the destination directory, is fsynced, renamed over the final
// name, and the directory is fsynced — so a crash at any instant
// leaves either the old file or the new one, never a torn write, and
// a rename that survived the crash is durable.
type store struct {
	root string
}

func openStore(root string) (*store, error) {
	if root == "" {
		return nil, fmt.Errorf("service: state dir must not be empty")
	}
	s := &store{root: root}
	for _, dir := range []string{s.jobsDir(), s.specsDir(), s.checkpointsDir(), s.cacheDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	return s, nil
}

func (s *store) jobsDir() string        { return filepath.Join(s.root, "jobs") }
func (s *store) specsDir() string       { return filepath.Join(s.root, "specs") }
func (s *store) checkpointsDir() string { return filepath.Join(s.root, "checkpoints") }
func (s *store) cacheDir() string       { return filepath.Join(s.root, "cache") }

func (s *store) jobPath(id string) string     { return filepath.Join(s.jobsDir(), id+".json") }
func (s *store) specPath(hash string) string  { return filepath.Join(s.specsDir(), hash+".json") }
func (s *store) cacheCSV(hash string) string  { return filepath.Join(s.cacheDir(), hash+".csv") }
func (s *store) cacheJSON(hash string) string { return filepath.Join(s.cacheDir(), hash+".json") }

func (s *store) checkpointDir(hash string) string {
	return filepath.Join(s.checkpointsDir(), hash)
}

func (s *store) cellPath(hash string, index int) string {
	return filepath.Join(s.checkpointDir(hash), fmt.Sprintf("cell-%06d.json", index))
}

// writeFileSync atomically replaces path with data and makes the
// replacement durable: temp file in the same directory, write, fsync,
// close, rename, directory fsync.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	name := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("service: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("service: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("service: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && !fi.IsDir()
}
