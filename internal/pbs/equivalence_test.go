package pbs

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/simtime"
)

// scratchRebuild throws away every piece of incremental scheduler
// state and recomputes it from the ground truth (the job map and the
// node table): the queued and running ledgers, the census counters,
// the per-queue running counts, and the free-CPU segment tree. The
// equivalence tests rebuild before every scheduling pass on one of two
// twin servers; if the incremental state ever drifted from a
// from-scratch recompute, the twins' placement decisions would
// diverge.
func scratchRebuild(s *Server) {
	for _, j := range s.queued {
		j.inQueue = false
	}
	s.queued = s.queued[:0]
	s.queuedDead, s.queuedHead = 0, 0
	s.queuedN, s.queuedCPUs = 0, 0
	s.running = s.running[:0]
	for _, q := range s.queues {
		q.running = 0
	}
	all := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		all = append(all, s.jobs[id])
	}
	sort.Slice(all, func(i, j int) bool { return all[i].SeqNo < all[j].SeqNo })
	for _, j := range all {
		switch j.State {
		case StateQueued:
			j.inQueue = true
			s.queued = append(s.queued, j)
			s.queuedN++
			s.queuedCPUs += j.Nodes * j.PPN
		case StateHeld:
			j.inQueue = true
			s.queued = append(s.queued, j)
		case StateRunning:
			j.runIdx = len(s.running)
			s.running = append(s.running, j)
			if q, ok := s.queues[j.Queue]; ok {
				q.running++
			}
		}
	}
	s.cpusUp, s.nodesUp = 0, 0
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.state != NodeDown {
			s.cpusUp += n.NP
		}
		if n.state != NodeDown && n.state != NodeOffline {
			s.nodesUp++
		}
	}
	s.rebuildFreeTree()
}

// assertLedgersMatchScratch cross-checks the incremental state against
// a non-mutating recompute from the ground truth.
func assertLedgersMatchScratch(t *testing.T, s *Server) {
	t.Helper()
	wantQ, wantCPUs := 0, 0
	wantRunning := map[string]bool{}
	for _, id := range s.order {
		j := s.jobs[id]
		switch j.State {
		case StateQueued:
			wantQ++
			wantCPUs += j.Nodes * j.PPN
		case StateRunning:
			wantRunning[j.ID] = true
		}
	}
	if s.queuedN != wantQ || s.queuedCPUs != wantCPUs {
		t.Fatalf("queue census: got (%d jobs, %d cpus), scratch (%d, %d)",
			s.queuedN, s.queuedCPUs, wantQ, wantCPUs)
	}
	if len(s.running) != len(wantRunning) {
		t.Fatalf("running ledger has %d jobs, scratch %d", len(s.running), len(wantRunning))
	}
	for _, j := range s.running {
		if !wantRunning[j.ID] {
			t.Fatalf("running ledger holds %s which is in state %v", j.ID, j.State)
		}
	}
	cpus, nodes := 0, 0
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		if n.state != NodeDown {
			cpus += n.NP
		}
		if n.state != NodeDown && n.state != NodeOffline {
			nodes++
		}
		if got := s.freeTree[s.treeCap+n.idx]; got != n.effFree() {
			t.Fatalf("free tree leaf for %s = %d, node has %d", name, got, n.effFree())
		}
	}
	if s.cpusUp != cpus || s.nodesUp != nodes {
		t.Fatalf("census: got (%d cpus, %d nodes), scratch (%d, %d)", s.cpusUp, s.nodesUp, cpus, nodes)
	}
}

// pbsAction is one scripted step of the randomized workload; the same
// script drives both twin servers.
type pbsAction struct {
	at   time.Duration
	kind int // 0 submit, 1 hold, 2 release, 3 delete, 4 node down, 5 node up
	job  int // submission index for hold/release/delete
	node string
	req  SubmitRequest
}

// pbsScript generates a deterministic randomized workload: mixed-width
// jobs, holds and releases, deletions, and node outages (which requeue
// rerunnable jobs and exercise the revival paths of the queue ledger).
func pbsScript(seed int64, nodes, jobs int) []pbsAction {
	rng := rand.New(rand.NewSource(seed))
	var script []pbsAction
	for i := 0; i < jobs; i++ {
		at := time.Duration(rng.Int63n(int64(6 * time.Hour)))
		req := SubmitRequest{
			Name:    fmt.Sprintf("job%03d", i),
			Owner:   "eq",
			Nodes:   1 + rng.Intn(3),
			PPN:     1 + rng.Intn(4),
			Runtime: time.Duration(rng.Int63n(int64(2*time.Hour))) + 5*time.Minute,
			Rerun:   rng.Intn(4) != 0,
		}
		if rng.Intn(3) == 0 {
			req.Walltime = req.Runtime + time.Duration(rng.Int63n(int64(time.Hour)))
		}
		script = append(script, pbsAction{at: at, kind: 0, job: i, req: req})
		switch rng.Intn(10) {
		case 0:
			h := at + time.Duration(rng.Int63n(int64(30*time.Minute)))
			script = append(script, pbsAction{at: h, kind: 1, job: i})
			script = append(script, pbsAction{at: h + time.Duration(rng.Int63n(int64(2*time.Hour))), kind: 2, job: i})
		case 1:
			script = append(script, pbsAction{at: at + time.Duration(rng.Int63n(int64(time.Hour))), kind: 3, job: i})
		}
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("eqnode%02d", 1+rng.Intn(nodes))
		down := time.Duration(rng.Int63n(int64(4 * time.Hour)))
		script = append(script, pbsAction{at: down, kind: 4, node: name})
		script = append(script, pbsAction{at: down + time.Duration(rng.Int63n(int64(time.Hour))) + time.Minute, kind: 5, node: name})
	}
	return script
}

// runPBSScript drives one server through the script. When rebuild is
// set, every scheduling pass is preceded by a from-scratch state
// recompute.
func runPBSScript(t *testing.T, script []pbsAction, nodes int, backfill, rebuild bool) *Server {
	t.Helper()
	eng := simtime.NewEngine()
	s := NewServer(eng, "eq.test")
	s.Backfill = backfill
	if rebuild {
		var wrap func()
		wrap = func() {
			scratchRebuild(s)
			s.schedOverride = nil
			s.schedule()
			s.schedOverride = wrap
		}
		s.schedOverride = wrap
	}
	for i := 1; i <= nodes; i++ {
		if _, err := s.AddNode(fmt.Sprintf("eqnode%02d", i), 4, true); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]string, 0, len(script))
	for i := 0; i < len(script); i++ {
		if script[i].kind == 0 {
			ids = append(ids, "")
		}
	}
	for _, a := range script {
		a := a
		eng.After(a.at, func() {
			switch a.kind {
			case 0:
				j, err := s.Qsub(a.req)
				if err != nil {
					t.Errorf("qsub %s: %v", a.req.Name, err)
					return
				}
				ids[a.job] = j.ID
			case 1:
				_ = s.Qhold(ids[a.job]) // may legitimately race the start
			case 2:
				_ = s.Qrls(ids[a.job])
			case 3:
				_ = s.Qdel(ids[a.job])
			case 4:
				_ = s.SetNodeAvailable(a.node, false)
			case 5:
				_ = s.SetNodeAvailable(a.node, true)
			}
		})
	}
	eng.Run()
	return s
}

// TestPBSIncrementalMatchesScratchRecompute runs the identical
// randomized workload on twin servers — one scheduling off its
// incremental ledgers and free-slot profile, one rebuilding all of it
// from scratch before every pass — and requires byte-identical
// outcomes: same start times, same placements, same final states.
func TestPBSIncrementalMatchesScratchRecompute(t *testing.T) {
	for _, backfill := range []bool{false, true} {
		name := "fcfs"
		if backfill {
			name = "backfill"
		}
		t.Run(name, func(t *testing.T) {
			script := pbsScript(421, 12, 120)
			inc := runPBSScript(t, script, 12, backfill, false)
			ref := runPBSScript(t, script, 12, backfill, true)
			assertLedgersMatchScratch(t, inc)
			if len(inc.order) != len(ref.order) {
				t.Fatalf("job counts diverged: %d vs %d", len(inc.order), len(ref.order))
			}
			for _, id := range inc.order {
				a, b := inc.jobs[id], ref.jobs[id]
				if a.State != b.State || a.StartTime != b.StartTime || a.EndTime != b.EndTime {
					t.Fatalf("job %s diverged: incremental (%v start=%v end=%v) vs scratch (%v start=%v end=%v)",
						id, a.State, a.StartTime, a.EndTime, b.State, b.StartTime, b.EndTime)
				}
				if fmt.Sprint(a.ExecHost) != fmt.Sprint(b.ExecHost) {
					t.Fatalf("job %s placement diverged:\n%v\nvs\n%v", id, a.ExecHost, b.ExecHost)
				}
			}
		})
	}
}
