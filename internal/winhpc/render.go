package winhpc

import (
	"fmt"
	"strings"
	"time"
)

// Text views mirroring the HPC Pack management shell: `job list` and
// `node list`. The Windows-side detector uses the SDK (Snapshot), but
// administrators read these tables; the qsim CLI and tests do too.

// JobList renders active jobs the way `job list` does.
func (s *Scheduler) JobList() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-16s %-14s %-10s %-9s %s\n", "Id", "Name", "Owner", "State", "Priority", "Resources")
	for _, j := range s.Jobs() {
		if j.State == JobFinished || j.State == JobCanceled || j.State == JobFailed {
			continue
		}
		res := fmt.Sprintf("%d %s", j.Count, strings.ToLower(j.Unit.String()))
		if j.Count != 1 {
			res += "s"
		}
		fmt.Fprintf(&b, "%-6d %-16s %-14s %-10s %-9s %s\n",
			j.ID, clip(j.Name, 16), clip(j.Owner, 14), j.State, j.Priority, res)
	}
	return b.String()
}

// NodeList renders the node table the way `node list` does.
func (s *Scheduler) NodeList() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-6s %-6s %s\n", "NodeName", "State", "Cores", "InUse", "Template")
	for _, n := range s.Nodes() {
		fmt.Fprintf(&b, "%-12s %-12s %-6d %-6d %s\n",
			clip(n.Name, 12), n.State(), n.Cores, n.UsedCores(), n.Template)
	}
	return b.String()
}

// FinishedJobReport summarises terminal jobs for accounting.
func (s *Scheduler) FinishedJobReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-16s %-10s %-12s %s\n", "Id", "Name", "State", "Elapsed", "Allocated")
	for _, j := range s.Jobs() {
		switch j.State {
		case JobFinished, JobFailed, JobCanceled:
			// Jobs that never started (cancelled in queue) keep a zero
			// elapsed time; an allocation proves the job ran.
			elapsed := time.Duration(0)
			if len(j.Alloc) > 0 {
				elapsed = j.EndTime - j.StartTime
			}
			fmt.Fprintf(&b, "%-6d %-16s %-10s %-12s %s\n",
				j.ID, clip(j.Name, 16), j.State, elapsed.Round(time.Second), strings.Join(j.AllocatedNodes(), ","))
		}
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
