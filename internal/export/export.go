// Package export serialises experiment results for plotting: CSV for
// spreadsheet/gnuplot workflows and JSON for everything else. The qsim
// CLI exposes these through -csv/-json flags.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/osid"
)

// WriteSeriesCSV writes a node-count time series as CSV with a header
// row. Times are in seconds of virtual time.
func WriteSeriesCSV(w io.Writer, series []cluster.Snapshot) error {
	cw := csv.NewWriter(w)
	header := []string{"t_sec", "linux_nodes", "windows_nodes", "switching", "broken",
		"linux_running", "linux_queued", "windows_running", "windows_queued"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, s := range series {
		row := []string{
			fmt.Sprintf("%.0f", s.At.Seconds()),
			fmt.Sprintf("%d", s.LinuxNodes),
			fmt.Sprintf("%d", s.WindowsNodes),
			fmt.Sprintf("%d", s.Switching),
			fmt.Sprintf("%d", s.Broken),
			fmt.Sprintf("%d", s.LinuxRunning),
			fmt.Sprintf("%d", s.LinuxQueued),
			fmt.Sprintf("%d", s.WindowsRun),
			fmt.Sprintf("%d", s.WindowsQueued),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// summaryJSON is the stable JSON shape for a run summary.
type summaryJSON struct {
	ElapsedSec      float64            `json:"elapsed_sec"`
	TotalCores      int                `json:"total_cores"`
	Utilisation     float64            `json:"utilisation"`
	UtilisationByOS map[string]float64 `json:"utilisation_by_os"`
	MeanWaitSec     map[string]float64 `json:"mean_wait_sec"`
	MaxWaitSec      map[string]float64 `json:"max_wait_sec"`
	JobsSubmitted   map[string]int     `json:"jobs_submitted"`
	JobsCompleted   map[string]int     `json:"jobs_completed"`
	Switches        int                `json:"switches"`
	SwitchesOK      int                `json:"switches_ok"`
	MeanSwitchSec   float64            `json:"mean_switch_sec"`
	MaxSwitchSec    float64            `json:"max_switch_sec"`
	SwitchOverhead  float64            `json:"switch_overhead"`
	MakespanSec     float64            `json:"makespan_sec"`
}

// WriteSummaryJSON writes a metrics summary as indented JSON.
func WriteSummaryJSON(w io.Writer, s metrics.Summary) error {
	out := summaryJSON{
		ElapsedSec:      s.Elapsed.Seconds(),
		TotalCores:      s.TotalCores,
		Utilisation:     s.Utilisation,
		UtilisationByOS: map[string]float64{},
		MeanWaitSec:     map[string]float64{},
		MaxWaitSec:      map[string]float64{},
		JobsSubmitted:   map[string]int{},
		JobsCompleted:   map[string]int{},
		Switches:        s.Switches,
		SwitchesOK:      s.SwitchesOK,
		MeanSwitchSec:   s.MeanSwitch.Seconds(),
		MaxSwitchSec:    s.MaxSwitch.Seconds(),
		SwitchOverhead:  s.SwitchOverhead,
		MakespanSec:     s.Makespan.Seconds(),
	}
	for _, os := range []osid.OS{osid.Linux, osid.Windows} {
		key := os.String()
		out.UtilisationByOS[key] = s.UtilisationOS[os]
		out.MeanWaitSec[key] = s.MeanWait[os].Seconds()
		out.MaxWaitSec[key] = s.MaxWait[os].Seconds()
		out.JobsSubmitted[key] = s.JobsSubmitted[os]
		out.JobsCompleted[key] = s.JobsCompleted[os]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SweepRow is one parameter-grid cell flattened for export. The sweep
// package produces these; keeping the type here lets the exporters
// stay free of a dependency on the sweep machinery.
type SweepRow struct {
	Cell               string  `json:"cell"`
	Mode               string  `json:"mode"`
	Policy             string  `json:"policy"`
	Sched              string  `json:"sched_policy"` // head-scheduler discipline (fcfs|backfill)
	Nodes              int     `json:"nodes"`
	Trace              string  `json:"trace"`
	FailureRate        float64 `json:"failure_rate"`
	Topology           string  `json:"topology"`
	Routing            string  `json:"routing,omitempty"` // empty for single-cluster cells
	Seed               int64   `json:"seed"`
	Utilisation        float64 `json:"utilisation"`
	MeanWaitLinuxSec   float64 `json:"mean_wait_linux_sec"`
	MeanWaitWindowsSec float64 `json:"mean_wait_windows_sec"`
	Switches           int     `json:"switches"`
	SwitchesOK         int     `json:"switches_ok"`
	Thrash             int     `json:"thrash"` // switches reversed within one dwell window
	MeanSwitchSec      float64 `json:"mean_switch_sec"`
	JobsSubmitted      int     `json:"jobs_submitted"`
	JobsCompleted      int     `json:"jobs_completed"`
	SubmitFailures     int     `json:"submit_failures"`
	BrokenNodes        int     `json:"broken_nodes"`
	Dropped            int     `json:"dropped"` // grid jobs no member could serve
	MakespanSec        float64 `json:"makespan_sec"`
	Err                string  `json:"err,omitempty"`
}

// WriteSweepCSV writes sweep rows as CSV with a header. Output is a
// pure function of the rows — fixed column order, fixed float
// formatting — so two identical sweeps serialise byte-identically.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	header := []string{"cell", "mode", "policy", "sched_policy", "nodes", "trace", "failure_rate",
		"topology", "routing", "seed",
		"utilisation", "mean_wait_linux_sec", "mean_wait_windows_sec",
		"switches", "switches_ok", "thrash", "mean_switch_sec",
		"jobs_submitted", "jobs_completed", "submit_failures", "broken_nodes",
		"dropped", "makespan_sec", "err"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.Cell, r.Mode, r.Policy, r.Sched,
			fmt.Sprintf("%d", r.Nodes),
			r.Trace,
			fmt.Sprintf("%g", r.FailureRate),
			r.Topology, r.Routing,
			fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%.6f", r.Utilisation),
			fmt.Sprintf("%.0f", r.MeanWaitLinuxSec),
			fmt.Sprintf("%.0f", r.MeanWaitWindowsSec),
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.SwitchesOK),
			fmt.Sprintf("%d", r.Thrash),
			fmt.Sprintf("%.0f", r.MeanSwitchSec),
			fmt.Sprintf("%d", r.JobsSubmitted),
			fmt.Sprintf("%d", r.JobsCompleted),
			fmt.Sprintf("%d", r.SubmitFailures),
			fmt.Sprintf("%d", r.BrokenNodes),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%.0f", r.MakespanSec),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepJSON writes sweep rows as an indented JSON array.
func WriteSweepJSON(w io.Writer, rows []SweepRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteJobsCSV writes per-job lifecycle records.
func WriteJobsCSV(w io.Writer, jobs []metrics.JobRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "os", "app", "cpus", "submitted_sec", "started_sec", "ended_sec", "wait_sec", "completed"}); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, j := range jobs {
		wait := time.Duration(0)
		if j.Completed {
			wait = j.Wait()
		}
		row := []string{
			j.ID, j.OS.String(), j.App,
			fmt.Sprintf("%d", j.CPUs),
			fmt.Sprintf("%.0f", j.Submitted.Seconds()),
			fmt.Sprintf("%.0f", j.Started.Seconds()),
			fmt.Sprintf("%.0f", j.Ended.Seconds()),
			fmt.Sprintf("%.0f", wait.Seconds()),
			fmt.Sprintf("%v", j.Completed),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSwitchesCSV writes per-switch records.
func WriteSwitchesCSV(w io.Writer, switches []metrics.SwitchRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "from", "to", "started_sec", "finished_sec", "duration_sec", "ok"}); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, s := range switches {
		row := []string{
			s.Node, s.From.String(), s.To.String(),
			fmt.Sprintf("%.0f", s.Started.Seconds()),
			fmt.Sprintf("%.0f", s.Finished.Seconds()),
			fmt.Sprintf("%.0f", s.Duration().Seconds()),
			fmt.Sprintf("%v", s.OK),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
