// Fixture for the globalrand analyzer: //simlint:allow suppression.
package globalrand

import "math/rand"

func allowedInline() int {
	return rand.Intn(3) //simlint:allow globalrand -- fixture: end-of-line directive
}

func allowedStandalone() float64 {
	//simlint:allow globalrand -- fixture: standalone directive covers the next line
	return rand.Float64()
}
