package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/osid"
	"repro/internal/sweep"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if raceEnabled && r.ID == "E18" {
				t.Skip("city tier is a single-cell sweep: nothing concurrent beyond E17, and minutes-slow under the race detector")
			}
			tab, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != r.ID {
				t.Fatalf("table ID %q != runner ID %q", tab.ID, r.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row %d has %d cells, header %d", i, len(row), len(tab.Header))
				}
			}
			out := tab.Render()
			if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Header[0]) {
				t.Fatalf("render:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 not found")
	}
	if _, ok := ByID("e11"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestExpectedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// E8: the v2 flag mechanism (row 2) uses fewer control actions
	// than both v1 (row 0) and the per-MAC variant (row 1) for the
	// same switch count.
	tab, err := E8ControlLoop()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("E8 rows = %d", len(tab.Rows))
	}
	flagActions := tab.Rows[2][2]
	if tab.Rows[0][2] <= flagActions || tab.Rows[1][2] <= flagActions {
		t.Fatalf("flag actions %s should undercut v1 %s and per-MAC %s",
			flagActions, tab.Rows[0][2], tab.Rows[1][2])
	}
	// E9: every row reports under-5m = true.
	tab, err = E9SwitchLatency()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("switch exceeded 5m: %v", row)
		}
	}
}

// TestE16BackfillNeverLosesToFCFS pins the PR's acceptance criterion:
// on every E16 trace EASY backfill's utilisation is equal or better
// than strict FCFS with no completions lost, and on the dense Poisson
// day it is strictly better. The raw numbers come from the sweep
// rather than the rendered table so the comparison is exact. (The
// companion guarantee — the wide head job starts no later than its
// reservation — is pinned by the scheduler-level starvation tests in
// internal/pbs and internal/winhpc.)
func TestE16BackfillNeverLosesToFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	out, err := sweep.Run(sweep.Config{Grid: E16Grid()})
	if err != nil {
		t.Fatal(err)
	}
	pick := func(traceName string, sched cluster.SchedPolicy) sweep.CellResult {
		t.Helper()
		for _, r := range out.Select(func(c sweep.Cell) bool {
			return c.Trace.Name == traceName && c.Sched == sched
		}) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			return r
		}
		t.Fatalf("no %v cell for trace %s", sched, traceName)
		return sweep.CellResult{}
	}
	done := func(r sweep.CellResult) int {
		s := r.Res.Summary
		return s.JobsCompleted[osid.Linux] + s.JobsCompleted[osid.Windows]
	}
	for _, trName := range []string{"phased-w0.5", "poisson-6jph-w0.5"} {
		fcfs := pick(trName, cluster.SchedFCFS)
		bf := pick(trName, cluster.SchedBackfill)
		if bf.Res.Summary.Utilisation < fcfs.Res.Summary.Utilisation {
			t.Errorf("%s: backfill util %.6f below fcfs %.6f",
				trName, bf.Res.Summary.Utilisation, fcfs.Res.Summary.Utilisation)
		}
		if done(bf) < done(fcfs) {
			t.Errorf("%s: backfill completed %d below fcfs %d", trName, done(bf), done(fcfs))
		}
	}
	// The dense Poisson day is where head-of-line blocking costs real
	// work: backfill must win outright there.
	fcfs := pick("poisson-6jph-w0.5", cluster.SchedFCFS)
	bf := pick("poisson-6jph-w0.5", cluster.SchedBackfill)
	if bf.Res.Summary.Utilisation <= fcfs.Res.Summary.Utilisation {
		t.Errorf("poisson day: backfill util %.6f not strictly above fcfs %.6f",
			bf.Res.Summary.Utilisation, fcfs.Res.Summary.Utilisation)
	}
}

// TestE15HysteresisBeatsThresholdOnDiurnal pins PR 3's acceptance
// criterion: on the diurnal trace the hysteresis policy performs
// strictly fewer switches than threshold at equal-or-better
// utilisation, and never thrashes more. The raw numbers come from the
// sweep rather than the rendered table so the comparison is exact.
func TestE15HysteresisBeatsThresholdOnDiurnal(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	g, err := E15Grid()
	if err != nil {
		t.Fatal(err)
	}
	out, err := sweep.Run(sweep.Config{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	pick := func(policy string) sweep.CellResult {
		t.Helper()
		for _, r := range out.Select(func(c sweep.Cell) bool {
			return c.Policy.Name == policy && c.Trace.Kind == sweep.TraceDiurnal
		}) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			return r
		}
		t.Fatalf("no diurnal cell for policy %s", policy)
		return sweep.CellResult{}
	}
	thr, hys := pick("threshold"), pick("hysteresis")
	if hys.Res.Summary.Switches >= thr.Res.Summary.Switches {
		t.Fatalf("hysteresis switches = %d, threshold = %d; want strictly fewer",
			hys.Res.Summary.Switches, thr.Res.Summary.Switches)
	}
	if hys.Res.Summary.Utilisation < thr.Res.Summary.Utilisation {
		t.Fatalf("hysteresis util = %.4f under threshold %.4f",
			hys.Res.Summary.Utilisation, thr.Res.Summary.Utilisation)
	}
	if hys.Res.Thrash > thr.Res.Thrash {
		t.Fatalf("hysteresis thrash = %d over threshold %d", hys.Res.Thrash, thr.Res.Thrash)
	}
}
