package sweep

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/export"
)

// Progress must fire exactly once per cell — run or cached, across
// every worker count — and the serialised calls must cover the exact
// expanded cell set.
func TestRunProgressFiresOncePerCell(t *testing.T) {
	g := smallGrid()
	cells := g.Expand()
	for _, workers := range []int{1, 4} {
		seen := map[int]int{}
		var inHook bool
		out, err := Run(Config{Grid: g, Workers: workers, Progress: func(r CellResult) {
			if inHook {
				t.Fatal("Progress called concurrently")
			}
			inHook = true
			seen[r.Cell.Index]++
			if r.Err != nil {
				t.Errorf("workers=%d: cell %s failed: %v", workers, r.Cell.Name(), r.Err)
			}
			inHook = false
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(cells) {
			t.Fatalf("workers=%d: Progress covered %d cells, grid has %d", workers, len(seen), len(cells))
		}
		for idx, n := range seen {
			if n != 1 {
				t.Errorf("workers=%d: cell %d reported %d times", workers, idx, n)
			}
		}
		if len(out.Results) != len(cells) {
			t.Fatalf("workers=%d: %d results for %d cells", workers, len(out.Results), len(cells))
		}
	}
}

// A Cached hook that supplies every cell must prevent any cell from
// running: the outcome echoes the supplied results verbatim (with the
// Cell field rebound), and Progress still reports them. The marker
// values could never come from a real run, so any actually-run cell
// would betray itself.
func TestRunCachedSuppliesResultsWithoutRunning(t *testing.T) {
	g := smallGrid()
	cells := g.Expand()
	// Cached is called from the worker goroutines (unlike Progress it
	// is not serialised), so the counter is atomic.
	var hits atomic.Int64
	reported := 0
	out, err := Run(Config{
		Grid:    g,
		Workers: 3,
		Cached: func(c Cell) (CellResult, bool) {
			hits.Add(1)
			r := CellResult{}
			r.Res.BrokenNodes = 1000 + c.Index
			return r, true
		},
		Progress: func(r CellResult) { reported++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(hits.Load()) != len(cells) || reported != len(cells) {
		t.Fatalf("cached=%d reported=%d, want %d each", hits.Load(), reported, len(cells))
	}
	for i, r := range out.Results {
		if r.Res.BrokenNodes != 1000+i {
			t.Fatalf("cell %d ran instead of using the cached result (BrokenNodes=%d)", i, r.Res.BrokenNodes)
		}
		if r.Cell.Index != i || r.Cell.Name() != cells[i].Name() {
			t.Fatalf("cell %d: Cached result not rebound to the expanded cell", i)
		}
	}
}

// A partial resume — half the cells cached, half run — must produce
// CSV byte-identical to a cold run: the resumed results and the fresh
// results land in the same rows with the same bytes.
func TestRunPartialCacheMatchesColdRunCSV(t *testing.T) {
	g := smallGrid()
	cold, err := Run(Config{Grid: g, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := export.WriteSweepCSV(&want, cold.Rows()); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(Config{Grid: g, Workers: 4, Cached: func(c Cell) (CellResult, bool) {
		if c.Index%2 == 0 {
			return cold.Results[c.Index], true
		}
		return CellResult{}, false
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := export.WriteSweepCSV(&got, resumed.Rows()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("partial-cache resume diverged from the cold run's CSV")
	}
}

// A Cancel channel closed before the sweep starts cancels every cell:
// nothing runs, nothing reaches Progress, and every result carries
// ErrCanceled.
func TestRunCancelBeforeStart(t *testing.T) {
	g := smallGrid()
	cancel := make(chan struct{})
	close(cancel)
	reported := 0
	out, err := Run(Config{Grid: g, Workers: 2, Cancel: cancel,
		Progress: func(CellResult) { reported++ }})
	if err != nil {
		t.Fatal(err)
	}
	if reported != 0 {
		t.Fatalf("%d cells reached Progress after cancellation", reported)
	}
	for i, r := range out.Results {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("cell %d: err = %v, want ErrCanceled", i, r.Err)
		}
	}
}
