// Package deploy reproduces the deployment machinery of
// dualboot-oscar: the OSCAR disk layout file (ide.disk) with v2's
// `skip` label, the Windows HPC diskpart.txt scripts (Figures 9, 10
// and 15), and reimaging engines for both operating systems that
// operate on the simulated disks — including the v1 failure mode where
// a Windows reimage rewrites the MBR, destroys GRUB and forces a Linux
// reinstall.
package deploy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hardware"
)

// LayoutKind classifies an ide.disk line.
type LayoutKind uint8

const (
	// KindPartition is an on-disk partition (/dev/sdaN).
	KindPartition LayoutKind = iota
	// KindVirtual is a non-disk filesystem line (tmpfs, nfs) that
	// systemimager writes into fstab but that allocates no disk space.
	KindVirtual
)

// LayoutEntry is one parsed ide.disk line.
type LayoutEntry struct {
	Kind       LayoutKind
	Device     string // "/dev/sda1" or "nfs_oscar:/home"
	Index      int    // partition number for KindPartition
	SizeMB     int64  // -1 for "*" (rest of disk)
	TypeName   string // ext3, swap, skip, tmpfs, nfs
	MountPoint string
	Options    string
	Bootable   bool
}

// Skip reports whether the entry reserves space without formatting —
// the v2 patch that protects the Windows partition during a Linux
// reimage ("The first partition with label skip will be reserved for
// Windows").
func (e LayoutEntry) Skip() bool { return e.TypeName == "skip" }

// Layout is a parsed ide.disk file.
type Layout struct {
	Entries []LayoutEntry
}

// Partitions returns the on-disk entries in file order.
func (l *Layout) Partitions() []LayoutEntry {
	var out []LayoutEntry
	for _, e := range l.Entries {
		if e.Kind == KindPartition {
			out = append(out, e)
		}
	}
	return out
}

// HasSkip reports whether any partition uses the v2 skip label.
func (l *Layout) HasSkip() bool {
	for _, e := range l.Partitions() {
		if e.Skip() {
			return true
		}
	}
	return false
}

// BootPartition returns the index of the bootable partition (where
// /boot and GRUB's menu.lst live), or 0 when none is marked.
func (l *Layout) BootPartition() int {
	for _, e := range l.Partitions() {
		if e.Bootable {
			return e.Index
		}
	}
	return 0
}

// ParseIdeDisk parses an ide.disk file. Figure 14's v2 layout parses
// verbatim:
//
//	/dev/sda1     16000     skip
//	/dev/sda2     100       ext3    /boot    defaults    bootable
//	/dev/sda5     512       swap
//	/dev/sda6     *         ext3    /        defaults
//	/dev/shm      -         tmpfs   /dev/shm defaults
//	nfs_oscar:/home  -      nfs     /home    rw
func ParseIdeDisk(text string) (*Layout, error) {
	l := &Layout{}
	seen := map[int]bool{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("deploy: ide.disk line %d: want at least device/size/type, got %q", lineNo+1, line)
		}
		e := LayoutEntry{Device: fields[0], TypeName: strings.ToLower(fields[2])}

		switch fields[1] {
		case "*":
			e.SizeMB = -1
		case "-":
			e.SizeMB = 0
		default:
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("deploy: ide.disk line %d: bad size %q", lineNo+1, fields[1])
			}
			e.SizeMB = n
		}
		if len(fields) > 3 {
			e.MountPoint = fields[3]
		}
		if len(fields) > 4 {
			e.Options = fields[4]
		}
		if len(fields) > 4 {
			for _, f := range fields[4:] {
				if f == "bootable" {
					e.Bootable = true
				}
			}
		}

		if idx, ok := partitionIndex(e.Device); ok {
			e.Kind = KindPartition
			e.Index = idx
			if seen[idx] {
				return nil, fmt.Errorf("deploy: ide.disk line %d: duplicate partition %s", lineNo+1, e.Device)
			}
			seen[idx] = true
			switch e.TypeName {
			case "ext3", "swap", "skip", "ntfs", "fat":
			default:
				return nil, fmt.Errorf("deploy: ide.disk line %d: unsupported partition type %q", lineNo+1, e.TypeName)
			}
			if e.SizeMB == 0 {
				return nil, fmt.Errorf("deploy: ide.disk line %d: partition needs a size", lineNo+1)
			}
		} else {
			e.Kind = KindVirtual
		}
		l.Entries = append(l.Entries, e)
	}
	if len(l.Partitions()) == 0 {
		return nil, fmt.Errorf("deploy: ide.disk defines no partitions")
	}
	return l, nil
}

// partitionIndex extracts N from /dev/sdaN or /dev/hdaN.
func partitionIndex(device string) (int, bool) {
	for _, prefix := range []string{"/dev/sda", "/dev/hda"} {
		if after, ok := strings.CutPrefix(device, prefix); ok {
			n, err := strconv.Atoi(after)
			if err == nil && n >= 1 {
				return n, true
			}
		}
	}
	return 0, false
}

// Render writes the layout back out in ide.disk format.
func (l *Layout) Render() string {
	var b strings.Builder
	for _, e := range l.Entries {
		size := strconv.FormatInt(e.SizeMB, 10)
		if e.SizeMB == -1 {
			size = "*"
		}
		if e.SizeMB == 0 {
			size = "-"
		}
		fmt.Fprintf(&b, "%s\t%s\t%s", e.Device, size, e.TypeName)
		if e.MountPoint != "" {
			fmt.Fprintf(&b, "\t%s", e.MountPoint)
		}
		if e.Options != "" {
			fmt.Fprintf(&b, "\t%s", e.Options)
		}
		if e.Bootable {
			b.WriteString("\tbootable")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// V1IdeDisk is the initial dual-boot layout: Windows on sda1 (listed
// so space is reserved, but v1 has no skip support — it is created
// unformatted and Windows must be installed first), /boot on sda2,
// swap on sda5, the shared FAT control partition on sda6, and the
// Linux root on sda7.
const V1IdeDisk = `/dev/sda1	150000	ntfs
/dev/sda2	100	ext3	/boot	defaults	bootable
/dev/sda5	512	swap
/dev/sda6	100	fat	/boot/swap	defaults
/dev/sda7	*	ext3	/	defaults
/dev/shm	-	tmpfs	/dev/shm	defaults
nfs_oscar:/home	-	nfs	/home	rw
`

// V2IdeDisk is Figure 14 verbatim: the skip label protects Windows and
// the FAT partition is gone (PXE took over boot control).
const V2IdeDisk = `/dev/sda1	16000	skip
/dev/sda2	100	ext3	/boot	defaults	bootable
/dev/sda5	512	swap
/dev/sda6	*	ext3	/	defaults
/dev/shm	-	tmpfs	/dev/shm	defaults
nfs_oscar:/home	-	nfs	/home	rw
`

// fsTypeFor maps an ide.disk type name onto the hardware model.
func fsTypeFor(name string) hardware.FSType {
	switch name {
	case "ext3":
		return hardware.FSExt3
	case "swap":
		return hardware.FSSwap
	case "fat":
		return hardware.FSFAT
	case "ntfs":
		return hardware.FSNTFS
	default:
		return hardware.FSNone
	}
}
