package hybridcluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/osid"
)

func TestPublicQuickstartFlow(t *testing.T) {
	trace := PoissonTrace(PoissonConfig{
		Seed: 1, Duration: 12 * time.Hour, JobsPerHour: 4, WindowsFrac: 0.4, MaxNodes: 4,
	})
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	res, err := Run(Scenario{
		Name:    "quickstart",
		Cluster: ClusterConfig{Mode: HybridV2, Cycle: 5 * time.Minute},
		Trace:   trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Summary.JobsCompleted[Linux] + res.Summary.JobsCompleted[Windows]
	if total != len(trace) {
		t.Fatalf("completed %d of %d", total, len(trace))
	}
	if res.Summary.Utilisation <= 0 {
		t.Fatal("zero utilisation")
	}
}

func TestPublicCompareModes(t *testing.T) {
	trace := MergeTraces(
		BurstTrace(BurstConfig{Start: 0, Jobs: 3, Gap: time.Minute, App: "Backburner",
			OS: Windows, Nodes: 2, PPN: 4, Runtime: time.Hour, Owner: "render"}),
		BurstTrace(BurstConfig{Start: 4 * time.Hour, Jobs: 3, Gap: time.Minute, App: "DL_POLY",
			OS: Linux, Nodes: 2, PPN: 4, Runtime: time.Hour, Owner: "md"}),
	)
	results, err := CompareModes(
		[]ClusterMode{Static, HybridV2},
		ClusterConfig{InitialLinux: 8, Cycle: 5 * time.Minute},
		trace, 48*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	table := ComparisonTable(results)
	if !strings.Contains(table, "hybrid-v2") || !strings.Contains(table, "static-split") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestPublicMatlabGATrace(t *testing.T) {
	trace := MatlabGATrace(3)
	byOS := trace.CountByOS()
	if byOS[osid.Windows] != 10 || byOS[osid.Linux] == 0 {
		t.Fatalf("mix = %v", byOS)
	}
}

func TestPublicSweep(t *testing.T) {
	out, err := Sweep(SweepConfig{
		Grid: SweepGrid{
			Modes:      []ClusterMode{HybridV2, Static},
			NodeCounts: []int{8},
			Traces: []SweepTraceSpec{
				{JobsPerHour: 3, WindowsFrac: 0.4, Duration: 6 * time.Hour},
			},
			BaseSeed: 1,
			Horizon:  48 * time.Hour,
		},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("cells = %d", len(out.Results))
	}
	for _, r := range out.Results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Cell.Name(), r.Err)
		}
	}
	table := out.Table()
	if !strings.Contains(table, "hybrid-v2") || !strings.Contains(table, "static-split") {
		t.Fatalf("table:\n%s", table)
	}
	if _, err := ParseSweepGrid("modes=hybrid-v2;nodes=8"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPolicies(t *testing.T) {
	trace := BurstTrace(BurstConfig{Start: 0, Jobs: 2, Gap: time.Minute, App: "Opera",
		OS: Windows, Nodes: 1, PPN: 4, Runtime: 30 * time.Minute, Owner: "u"})
	for _, p := range []Policy{
		FCFSPolicy{},
		ThresholdPolicy{Reserve: 2, MinQueuedCPUs: 1},
		&HysteresisPolicy{MinDwell: 10 * time.Minute},
		&PredictivePolicy{},
		FairSharePolicy{MaxStep: 2},
	} {
		res, err := Run(Scenario{
			Name:    p.Name(),
			Cluster: ClusterConfig{Mode: HybridV2, InitialLinux: 16, Cycle: 5 * time.Minute, Policy: p},
			Trace:   trace,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Summary.JobsCompleted[Windows] != 2 {
			t.Fatalf("%s completed %v", p.Name(), res.Summary.JobsCompleted)
		}
	}
}
