package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A CheckedPackage is one parsed, type-checked package ready for
// analyzers: syntax plus full type information plus the raw file
// bytes (the directive scanner needs them to tell end-of-line
// directives from standalone ones).
type CheckedPackage struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Sources map[string][]byte // filename -> raw bytes
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Error      *struct{ Err string }
}

// Load resolves package patterns with the go tool and type-checks the
// matched packages from source. Imports are satisfied from the build
// cache's export data (`go list -export -deps`), so the loader needs
// no dependency beyond the standard library and the go tool that is
// already running it. Test files are deliberately excluded — see the
// package documentation.
func Load(patterns []string) ([]*CheckedPackage, error) {
	targets, err := goList(append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp, err := NewImporter(fset, patterns...)
	if err != nil {
		return nil, err
	}

	var pkgs []*CheckedPackage
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		cp, err := parseAndCheck(fset, t, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, cp)
	}
	return pkgs, nil
}

// NewImporter builds a types.Importer that satisfies imports from the
// build cache's export data for the packages matching patterns (and
// all their dependencies). The analysistest harness uses it with the
// fixture's import list; Load uses it with the target patterns.
func NewImporter(fset *token.FileSet, patterns ...string) (types.Importer, error) {
	exports := map[string]string{}
	if len(patterns) > 0 {
		deps, err := goList(append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...))
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("simlint: no export data for %q", path)
		}
		return os.Open(file)
	}), nil
}

func goList(args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("simlint: go list: %v\n%s", err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("simlint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("simlint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func parseAndCheck(fset *token.FileSet, t listedPackage, imp types.Importer) (*CheckedPackage, error) {
	cp := &CheckedPackage{
		PkgPath: t.ImportPath,
		Fset:    fset,
		Sources: make(map[string][]byte, len(t.GoFiles)),
	}
	for _, name := range t.GoFiles {
		filename := filepath.Join(t.Dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, fmt.Errorf("simlint: %v", err)
		}
		f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("simlint: %v", err)
		}
		cp.Sources[filename] = src
		cp.Files = append(cp.Files, f)
	}
	cp.Info = newTypesInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	pkg, err := conf.Check(t.ImportPath, fset, cp.Files, cp.Info)
	if err != nil {
		return nil, fmt.Errorf("simlint: type-checking %s: %v", t.ImportPath, err)
	}
	cp.Pkg = pkg
	return cp, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
