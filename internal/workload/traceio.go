package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/osid"
)

// This file adds the campus diurnal generator and trace serialisation,
// so recorded or hand-written job streams can be replayed through the
// simulator (`qsim -trace file -tracefile jobs.csv`).

// DiurnalConfig parameterises the day/night campus pattern: submission
// rates peak in working hours and fall overnight.
type DiurnalConfig struct {
	Seed        int64
	Days        int     // default 1
	PeakPerHour float64 // daytime submission rate (default 6)
	NightFrac   float64 // night rate as a fraction of peak (default 0.15)
	WindowsFrac float64
	MaxNodes    int
}

// Diurnal draws submissions from the catalog with a sinusoidal-ish
// day/night rate: full rate 09:00–17:00, NightFrac of it 21:00–07:00,
// linear shoulders between.
func Diurnal(cfg DiurnalConfig) Trace {
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.PeakPerHour <= 0 {
		cfg.PeakPerHour = 6
	}
	if cfg.NightFrac <= 0 {
		cfg.NightFrac = 0.15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	winApps := append(CatalogByPlatform(WindowsOnly), CatalogByPlatform(Both)...)
	linApps := append(CatalogByPlatform(LinuxOnly), CatalogByPlatform(Both)...)

	var trace Trace
	end := time.Duration(cfg.Days) * 24 * time.Hour
	// Thinning: draw candidate arrivals at the peak rate, accept with
	// probability rate(t)/peak.
	meanGap := time.Duration(float64(time.Hour) / cfg.PeakPerHour)
	now := time.Duration(0)
	for {
		now += time.Duration(rng.ExpFloat64() * float64(meanGap))
		if now > end {
			break
		}
		if rng.Float64() > diurnalFactor(now, cfg.NightFrac) {
			continue
		}
		var app App
		var os osid.OS
		if rng.Float64() < cfg.WindowsFrac {
			app = winApps[rng.Intn(len(winApps))]
			os = osid.Windows
		} else {
			app = linApps[rng.Intn(len(linApps))]
			os = osid.Linux
		}
		nodes := app.TypicalNodes
		if cfg.MaxNodes > 0 && nodes > cfg.MaxNodes {
			nodes = cfg.MaxNodes
		}
		trace = append(trace, Job{
			At: now, App: app.Name, OS: os,
			Owner: fmt.Sprintf("user%02d", rng.Intn(12)+1),
			Nodes: nodes, PPN: app.TypicalPPN,
			Runtime: app.TypicalRuntime,
		})
	}
	trace.Sort()
	return trace
}

// diurnalFactor returns the acceptance probability at time-of-day t.
func diurnalFactor(t time.Duration, nightFrac float64) float64 {
	hour := float64(t%(24*time.Hour)) / float64(time.Hour)
	switch {
	case hour >= 9 && hour < 17:
		return 1
	case hour >= 21 || hour < 7:
		return nightFrac
	case hour >= 7 && hour < 9: // morning ramp
		return nightFrac + (1-nightFrac)*(hour-7)/2
	default: // 17–21 evening decay
		return 1 - (1-nightFrac)*(hour-17)/4
	}
}

// WriteCSV serialises a trace.
func WriteCSV(w io.Writer, trace Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_sec", "app", "os", "owner", "nodes", "ppn", "runtime_sec"}); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	for _, j := range trace {
		row := []string{
			strconv.FormatFloat(j.At.Seconds(), 'f', 0, 64),
			j.App, j.OS.String(), j.Owner,
			strconv.Itoa(j.Nodes), strconv.Itoa(j.PPN),
			strconv.FormatFloat(j.Runtime.Seconds(), 'f', 0, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or by hand; the header
// row is required, field order fixed).
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty trace file")
	}
	if len(records[0]) != 7 || records[0][0] != "at_sec" {
		return nil, fmt.Errorf("workload: bad header %v", records[0])
	}
	var trace Trace
	for i, rec := range records[1:] {
		at, err1 := strconv.ParseFloat(rec[0], 64)
		os, err2 := osid.Parse(rec[2])
		nodes, err3 := strconv.Atoi(rec[4])
		ppn, err4 := strconv.Atoi(rec[5])
		runSec, err5 := strconv.ParseFloat(rec[6], 64)
		for _, e := range []error{err1, err2, err3, err4, err5} {
			if e != nil {
				return nil, fmt.Errorf("workload: row %d: %v", i+2, e)
			}
		}
		j := Job{
			At:      time.Duration(at * float64(time.Second)),
			App:     rec[1],
			OS:      os,
			Owner:   rec[3],
			Nodes:   nodes,
			PPN:     ppn,
			Runtime: time.Duration(runSec * float64(time.Second)),
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i+2, err)
		}
		trace = append(trace, j)
	}
	trace.Sort()
	return trace, nil
}
