package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseGridSpec throws arbitrary compact-notation strings at the
// grid-spec parser. The parser must never panic, and every grid it
// accepts must round-trip: GridString can serialise it, the result
// reparses, and a second GridString reproduces the first byte for byte
// (the canonical form is a fixed point). The seed corpus is the
// committed experiment spec documents, reassembled into the compact
// notation exactly as LoadSpec does, plus the package doc's examples
// and some deliberately broken specs.
func FuzzParseGridSpec(f *testing.F) {
	for _, spec := range seedSpecsFromDocs(f) {
		f.Add(spec)
	}
	f.Add("modes=hybrid-v2,static-split;nodes=8,16;winfracs=0.25,0.5;failrates=0,0.05")
	f.Add("traces=swf:specs/pwa_sample_1k.swf;swfmaxjobs=100;swftime=requested")
	f.Add("policies=fcfs;hours=8") // deprecated alias still parses
	f.Add("modes=;nodes=8")
	f.Add("nodes=8;nodes=16")
	f.Add("=;;==;winfracs=2")
	f.Add("mmppdwell=-1h;think=1ns;users=0")

	f.Fuzz(func(t *testing.T, spec string) {
		g, err := ParseGridSpec(spec)
		if err != nil {
			return
		}
		canon, err := GridString(g)
		if err != nil {
			t.Fatalf("accepted spec %q produced an inexpressible grid: %v", spec, err)
		}
		back, err := ParseGridSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", canon, spec, err)
		}
		canon2, err := GridString(back)
		if err != nil {
			t.Fatalf("reparsed canonical form %q does not reserialise: %v", canon, err)
		}
		if canon2 != canon {
			t.Fatalf("canonical form is not a fixed point: %q reparsed to %q", canon, canon2)
		}
	})
}

// seedSpecsFromDocs rebuilds each committed spec document's compact
// grid notation — grid keys in file order plus the hoisted scalars —
// to seed the fuzzer with every axis combination the repo actually
// exercises.
func seedSpecsFromDocs(f *testing.F) []string {
	paths, err := filepath.Glob("../../specs/*.json")
	if err != nil || len(paths) == 0 {
		return nil
	}
	var specs []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Logf("seed %s: %v", path, err)
			continue
		}
		var doc struct {
			Grid    map[string]string `json:"grid"`
			Seeds   *struct{ Base int64 }
			Cycle   string `json:"cycle"`
			Horizon string `json:"horizon"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			f.Logf("seed %s: %v", path, err)
			continue
		}
		var fields []string
		for _, key := range SpecKeys() {
			if val, ok := doc.Grid[key]; ok {
				fields = append(fields, key+"="+val)
			}
		}
		if doc.Seeds != nil {
			fields = append(fields, fmt.Sprintf("seed=%d", doc.Seeds.Base))
		}
		if doc.Cycle != "" {
			fields = append(fields, "cycle="+doc.Cycle)
		}
		if doc.Horizon != "" {
			fields = append(fields, "horizon="+doc.Horizon)
		}
		if len(fields) > 0 {
			specs = append(specs, strings.Join(fields, ";"))
		}
	}
	return specs
}
