// Live-wire control loop: the head-node communicators exchange the
// paper's Figure-5 queue-state format over real localhost TCP sockets
// while a simulated cluster responds to the reboot orders. This is the
// same protocol cmd/dualbootd runs, shown at library level.
//
//	go run ./examples/livecontrol
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/controller"
	"repro/internal/osid"
	"repro/internal/workload"
)

func main() {
	c, err := cluster.New(cluster.Config{Mode: cluster.HybridV2, InitialLinux: 16, Cycle: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	c.Mgr.Stop() // replace the in-process loop with the TCP one

	// Wedge the Windows queue: one wide CFD job, zero Windows nodes.
	err = c.ScheduleTrace(workload.Burst(workload.BurstConfig{
		Start: 0, Jobs: 1, Gap: time.Minute, App: "ANSYS FLUENT",
		OS: osid.Windows, Nodes: 4, PPN: 4, Runtime: 90 * time.Minute, Owner: "cfd",
	}))
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	policy := controller.FCFS{}

	lin, err := comm.ListenTCP("127.0.0.1:0", func(from string, m comm.Message) {
		if m.Kind != comm.KindState {
			return
		}
		mu.Lock()
		win := c.SideInfo(osid.Windows)
		win.Report = m.Report
		linSide := c.SideInfo(osid.Linux)
		d := policy.Decide(c.Eng.Now(), linSide, win)
		submitted := 0
		if d.Act {
			submitted = c.OrderSwitch(d.Donor, d.Target, d.Nodes)
		}
		mu.Unlock()
		fmt.Printf("  LINHEAD: %s (submitted %d)\n", d, submitted)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lin.Close()
	fmt.Printf("LINHEAD communicator on %s\n", lin.Addr())

	for cycle := 1; cycle <= 3; cycle++ {
		mu.Lock()
		c.Eng.RunFor(10 * time.Minute)
		rep := c.SideInfo(osid.Windows).Report
		mu.Unlock()
		msg := comm.Message{Kind: comm.KindState, From: osid.Windows, Report: rep}
		fmt.Printf("cycle %d: WINHEAD sends %q\n", cycle, msg.Encode())
		if err := comm.SendTCP(lin.Addr(), msg, 2*time.Second); err != nil {
			log.Fatal(err)
		}
		//simlint:allow walltime -- interactive demo pacing real output
		time.Sleep(30 * time.Millisecond)
	}

	mu.Lock()
	c.RunUntilDrained(24 * time.Hour)
	sum := c.Summary()
	mu.Unlock()
	fmt.Printf("\ndone: windows job completed=%d, switches=%d, max switch %v\n",
		sum.JobsCompleted[osid.Windows], sum.Switches, sum.MaxSwitch.Round(time.Second))
}
